//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the size-class segregated pool allocator and its lazy-sweep
/// collector (runtime/Heap.{h,cpp}):
///
///   * block refill and free-list reuse — an allocate–collect loop must
///     reach a steady state where no new blocks are mapped (boundedness);
///   * the fault-injection protocol (GC torture, FailAllocAt) routed
///     through the block-refill slow path;
///   * the double-collection fix on the heap-limit path;
///   * per-size-class allocation counters, including that pure float
///     arithmetic allocates nothing (floats are NaN-boxed immediates);
///   * under ASan, that swept-free cells stay poisoned until reallocated.
///
//===----------------------------------------------------------------------===//
#include "grift/Grift.h"
#include "runtime/Blame.h"
#include "runtime/Heap.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace grift;

namespace {

/// Allocates \p N unrooted (instant-garbage) tuples of \p Slots slots.
void makeGarbage(Heap &H, unsigned N, uint32_t Slots) {
  for (unsigned I = 0; I != N; ++I)
    H.allocTuple(Slots);
}

} // namespace

//===----------------------------------------------------------------------===//
// Block refill, lazy sweep, and free-list reuse
//===----------------------------------------------------------------------===//

TEST(PoolAllocator, RefillsBlocksOnDemand) {
  Heap H;
  H.setNurserySize(0); // pool mechanics: allocate straight into the old gen
  EXPECT_EQ(H.poolBlocks(), 0u);
  // One 64-byte-cell block holds ~1023 cells; two blocks' worth of
  // 0-slot tuples must map at least two blocks.
  makeGarbage(H, 2100, 0);
  EXPECT_GE(H.poolBlocks(), 2u);
  EXPECT_EQ(H.objectsAllocatedInClass(0), 2100u);
  EXPECT_EQ(H.largeObjectsAllocated(), 0u);
}

TEST(PoolAllocator, AllocateCollectLoopHoldsBlocksSteady) {
  Heap H;
  H.setNurserySize(0); // pool mechanics: allocate straight into the old gen
  // Prime: allocate a round of garbage in several classes, then collect.
  auto round = [&H] {
    makeGarbage(H, 800, 0);  // class 0 (64 B)
    makeGarbage(H, 400, 8);  // class 2 (128 B)
    makeGarbage(H, 200, 40); // class 5 (384 B)
    H.collect();
  };
  round();
  size_t Blocks = H.poolBlocks();
  ASSERT_GE(Blocks, 3u); // at least one block per touched class
  // Steady state: every later round is served entirely from swept cells
  // of the existing blocks, so the block count must not move.
  for (int I = 0; I != 10; ++I) {
    round();
    EXPECT_EQ(H.poolBlocks(), Blocks) << "round " << I;
  }
  EXPECT_EQ(H.liveObjects(), 0u);
}

TEST(PoolAllocator, CollectReportsExactLiveCounts) {
  Heap H;
  Value Kept = H.allocTuple(3);
  Rooted Root(H, Kept);
  makeGarbage(H, 500, 3);
  // Lazy sweep must not smear the live numbers: they are counted during
  // the mark phase and exact as soon as collect() returns.
  H.collect();
  EXPECT_EQ(H.liveObjects(), 1u);
}

TEST(PoolAllocator, LargeObjectsBypassThePoolAndSweepEagerly) {
  Heap H;
  ASSERT_GT(100u, Heap::MaxSmallSlots);
  {
    Value V = H.allocVector(100, Value::fromFixnum(7));
    Rooted Root(H, V);
    EXPECT_EQ(H.largeObjectsAllocated(), 1u);
    EXPECT_EQ(V.object()->slot(99), Value::fromFixnum(7));
    H.collect();
    EXPECT_EQ(H.liveObjects(), 1u); // rooted: survives
  }
  H.collect();
  EXPECT_EQ(H.liveObjects(), 0u); // unrooted: freed eagerly at collect
}

//===----------------------------------------------------------------------===//
// Fault injection through the pool slow path
//===----------------------------------------------------------------------===//

TEST(PoolAllocator, GCTortureEveryAllocationSurvivesBlockRefill) {
  // Torture period 1 collects before every allocation, with every
  // allocation forced down the slow path (the injector disables the
  // inline fast path) — so block refill, lazy sweep, and bump allocation
  // all run under a collector that fires as often as possible.
  Heap H;
  FaultInjector Injector;
  Injector.GCTorturePeriod = 1;
  H.setFaultInjector(&Injector);
  Value Outer = H.allocTuple(2);
  Rooted Root(H, Outer);
  for (unsigned I = 0; I != 1500; ++I) {
    Value Inner = H.allocBox(Value::fromFixnum(static_cast<int64_t>(I)));
    Root.get().object()->slot(0) = Inner;
  }
  EXPECT_GE(Injector.ForcedCollections, 1500u);
  EXPECT_EQ(Root.get().object()->slot(0).object()->slot(0),
            Value::fromFixnum(1499));
  H.setFaultInjector(nullptr);
}

TEST(PoolAllocator, FailAllocAtSweepThroughRefill) {
  // Schedule the failure at every allocation index of a fixed workload,
  // including the indices that land exactly on a block-refill boundary;
  // each scheduled failure must surface as OutOfMemory and leave the
  // heap usable.
  // 1-slot tuples use 96-byte cells, 682 per 64 KiB block, so 1500
  // allocations cross two refill boundaries; the failure schedule then
  // covers bump, free-list and refill paths alike.
  constexpr unsigned Workload = 1500;
  FaultInjector Probe;
  {
    Heap H;
    H.setFaultInjector(&Probe);
    makeGarbage(H, Workload, 1);
    H.setFaultInjector(nullptr);
  }
  ASSERT_EQ(Probe.AllocCount, Workload);
  for (uint64_t At = 1; At <= Workload; At += 61) {
    Heap H;
    FaultInjector Injector;
    Injector.FailAllocAt = At;
    H.setFaultInjector(&Injector);
    bool Threw = false;
    for (unsigned I = 0; I != Workload; ++I) {
      try {
        H.allocTuple(1);
      } catch (RuntimeError &E) {
        EXPECT_EQ(E.Kind, ErrorKind::OutOfMemory);
        EXPECT_EQ(Injector.AllocCount, At);
        Threw = true;
      }
    }
    EXPECT_TRUE(Threw) << "scheduled failure #" << At << " never fired";
    // One-shot: the heap keeps allocating normally afterwards.
    Value V = H.allocTuple(1);
    EXPECT_TRUE(V.isHeap());
    H.setFaultInjector(nullptr);
  }
}

//===----------------------------------------------------------------------===//
// Heap limit: the avoided second back-to-back collection
//===----------------------------------------------------------------------===//

TEST(PoolAllocator, HeapLimitSkipsRedundantSecondCollection) {
  // The avoided double collection needs the GC threshold and the hard
  // limit to trip on the SAME allocation: the threshold path collects,
  // and the limit path — still over, with nothing allocated since —
  // must skip its own collect and fail straight away. A 1 MiB limit
  // clamps the threshold to 256 KiB; ~900 KiB of rooted small objects
  // stays under both, and one 200 KB vector then crosses both at once.
  Heap H;
  H.setNurserySize(0); // the threshold/limit interplay under test is the
                       // old generation's; a nursery would batch it
  H.setHeapLimit(1u << 20);
  std::vector<Rooted *> Roots; // keep everything live: no reclaimable slack
  for (unsigned I = 0; I != 2344; ++I) {
    Value V = H.allocVector(40, Value::unit()); // 384 B cells
    Roots.push_back(new Rooted(H, V));
  }
  EXPECT_EQ(H.doubleCollectionsAvoided(), 0u);
  bool Hit = false;
  try {
    Value Big = H.allocVector(24992, Value::unit()); // 200,000 B payload
    (void)Big;
  } catch (RuntimeError &E) {
    EXPECT_EQ(E.Kind, ErrorKind::OutOfMemory);
    Hit = true;
  }
  EXPECT_TRUE(Hit) << "the large allocation fit under the 1 MiB limit";
  // One collection on the threshold path, none on the limit path.
  EXPECT_EQ(H.doubleCollectionsAvoided(), 1u);
  while (!Roots.empty()) { // LIFO teardown keeps the temp-root stack sane
    delete Roots.back();
    Roots.pop_back();
  }
  EXPECT_EQ(H.tempRootDepth(), 0u);
}

//===----------------------------------------------------------------------===//
// Allocation observability, and floats allocating nothing
//===----------------------------------------------------------------------===//

TEST(PoolAllocator, PerClassCountersMatchAllocationSizes) {
  Heap H;
  H.allocTuple(0);                      // 64 B  -> class 0
  H.allocBox(Value::fromFixnum(1));     // 72 B  -> class 1 (96 B cell)
  H.allocTuple(4);                      // 96 B  -> class 1
  H.allocVector(8, Value::unit());      // 128 B -> class 2
  H.allocVector(16, Value::unit());     // 192 B -> class 3
  H.allocVector(24, Value::unit());     // 256 B -> class 4
  H.allocVector(40, Value::unit());     // 384 B -> class 5
  H.allocVector(56, Value::unit());     // 512 B -> class 6
  H.allocVector(57, Value::unit());     // large
  EXPECT_EQ(H.objectsAllocatedInClass(0), 1u);
  EXPECT_EQ(H.objectsAllocatedInClass(1), 2u);
  EXPECT_EQ(H.objectsAllocatedInClass(2), 1u);
  EXPECT_EQ(H.objectsAllocatedInClass(3), 1u);
  EXPECT_EQ(H.objectsAllocatedInClass(4), 1u);
  EXPECT_EQ(H.objectsAllocatedInClass(5), 1u);
  EXPECT_EQ(H.objectsAllocatedInClass(6), 1u);
  EXPECT_EQ(H.largeObjectsAllocated(), 1u);
  EXPECT_EQ(H.bytesAllocated(), 64u + 96 + 96 + 128 + 192 + 256 + 384 + 512 +
                                    (sizeof(HeapObject) + 57 * sizeof(Value)));
}

TEST(PoolAllocator, FloatArithmeticAllocatesNothing) {
  // The tentpole observable: a float-arithmetic loop's allocation count
  // must not scale with the iteration count. (Floats are NaN-boxed
  // immediates; the only allocations are program scaffolding.)
  auto allocsFor = [](int Iters) {
    Grift G;
    std::string Errors;
    std::string Source = "(print-float (repeat (i 0 " +
                         std::to_string(Iters) +
                         ") (acc : Float 0.0) (fl+ acc 1.5)))";
    auto Exe = G.compile(Source, CastMode::Coercions, Errors);
    EXPECT_TRUE(Exe.has_value()) << Errors;
    RunResult R = Exe->run();
    EXPECT_TRUE(R.OK) << R.Error.str();
    return R.Stats.allocObjects();
  };
  uint64_t Small = allocsFor(100);
  uint64_t Large = allocsFor(100000);
  EXPECT_EQ(Small, Large);
}

TEST(PoolAllocator, FloatDynRoundTripsAllocateNothing) {
  // Injecting a float into Dyn is representation-free under NaN-boxing:
  // no DynBox, in every cast mode.
  for (CastMode Mode :
       {CastMode::Coercions, CastMode::TypeBased, CastMode::Monotonic}) {
    auto allocsFor = [Mode](int Iters) {
      Grift G;
      std::string Errors;
      std::string Source = "(print-float (repeat (i 0 " +
                           std::to_string(Iters) +
                           ") (acc : Float 0.0)"
                           " (fl+ acc (ann (ann 0.5 Dyn) Float))))";
      auto Exe = G.compile(Source, Mode, Errors);
      EXPECT_TRUE(Exe.has_value()) << Errors;
      RunResult R = Exe->run();
      EXPECT_TRUE(R.OK) << R.Error.str();
      return R.Stats.allocObjects();
    };
    EXPECT_EQ(allocsFor(100), allocsFor(50000))
        << "mode " << static_cast<int>(Mode);
  }
}

TEST(PoolAllocator, RunResultExposesCollectionAndPauseCounters) {
  Grift G;
  std::string Errors;
  // Allocate enough boxed garbage to force collections under a small
  // heap budget.
  auto Exe = G.compile("(print-int (repeat (i 0 20000) (acc : Int 0)"
                       "  (+ acc (unbox (box 1)))))",
                       CastMode::Coercions, Errors);
  ASSERT_TRUE(Exe.has_value()) << Errors;
  RunLimits Limits;
  Limits.MaxHeapBytes = 1u << 20;
  RunResult R = Exe->run("", Limits);
  ASSERT_TRUE(R.OK) << R.Error.str();
  EXPECT_EQ(R.Output, "20000");
  EXPECT_GE(R.Stats.allocObjects(), 20000u);
  EXPECT_GT(R.Stats.AllocBytes, 0u);
  // The boxes die young, so under the default nursery this workload is
  // collected almost entirely by minor collections; with the nursery
  // disabled it degenerates to majors. Either way some collector ran.
  EXPECT_GE(R.Stats.Collections + R.Stats.MinorCollections, 1u);
  // Pause accounting: max <= total, and nonzero once a collection ran.
  EXPECT_LE(R.Stats.GCPauseMaxNs, R.Stats.GCPauseTotalNs);
  EXPECT_GT(R.Stats.GCPauseTotalNs, 0u);
  EXPECT_LE(R.Stats.GCMinorPauseMaxNs, R.Stats.GCPauseMaxNs);
}

//===----------------------------------------------------------------------===//
// ASan: swept cells stay poisoned until reallocation
//===----------------------------------------------------------------------===//

#if GRIFT_ASAN
TEST(PoolAllocator, SweptCellsArePoisonedUntilReallocated) {
  Heap H;
  H.setNurserySize(0); // the poisoning under test is the pool sweeper's
  // Unrooted garbage in the 128-byte class, remembered by raw pointer.
  std::vector<void *> Stale;
  for (unsigned I = 0; I != 32; ++I) {
    Value V = H.allocTuple(8);
    Stale.push_back(
        reinterpret_cast<char *>(static_cast<void *>(V.object())) +
        sizeof(HeapObject));
  }
  H.collect();
  // The allocator prefers virgin bump-region cells over sweeping, so
  // exhaust the block's bump region first; the next allocation then has
  // to sweep [0, SweepBound) and poison the dead cells it frees.
  const uint32_t Capacity =
      static_cast<uint32_t>((Heap::BlockBytes - sizeof(PoolBlock)) / 128);
  for (uint32_t I = 32; I != Capacity; ++I)
    H.allocTuple(8);
  Value Fresh = H.allocTuple(8);
  Rooted Root(H, Fresh);
  unsigned Poisoned = 0;
  for (void *Payload : Stale)
    if (__asan_address_is_poisoned(Payload))
      ++Poisoned;
  // All but the few cells already recycled for Fresh must be poisoned.
  EXPECT_GE(Poisoned, 30u);
}
#else
TEST(PoolAllocator, SweptCellsArePoisonedUntilReallocated) {
  GTEST_SKIP() << "requires -DGRIFT_SANITIZE=address (GRIFT_ASAN)";
}
#endif
