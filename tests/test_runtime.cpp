//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the value representation, heap/GC, and the cast runtime
/// applied directly to values.
///
//===----------------------------------------------------------------------===//
#include "runtime/Runtime.h"

#include "bench_programs/Benchmarks.h"
#include "grift/Grift.h"

#include <gtest/gtest.h>

using namespace grift;

//===----------------------------------------------------------------------===//
// Value tagging
//===----------------------------------------------------------------------===//

TEST(Value, FixnumRoundTrip) {
  for (int64_t I : {INT64_C(0), INT64_C(1), INT64_C(-1), INT64_C(123456789),
                    Value::FixnumMax, Value::FixnumMin}) {
    Value V = Value::fromFixnum(I);
    EXPECT_TRUE(V.isFixnum());
    EXPECT_EQ(V.asFixnum(), I);
  }
}

TEST(Value, ImmediateRoundTrip) {
  EXPECT_TRUE(Value::unit().isUnit());
  EXPECT_TRUE(Value::fromBool(true).asBool());
  EXPECT_FALSE(Value::fromBool(false).asBool());
  EXPECT_EQ(Value::fromChar('z').asChar(), 'z');
  EXPECT_EQ(Value::fromChar('\n').asChar(), '\n');
  EXPECT_FALSE(Value::unit().isBool());
  EXPECT_FALSE(Value::fromBool(true).isChar());
}

TEST(Value, TagsAreDisjoint) {
  EXPECT_TRUE(Value::fromFixnum(3).isFixnum());
  EXPECT_FALSE(Value::fromFixnum(3).isImm());
  EXPECT_FALSE(Value::fromBool(true).isFixnum());
  EXPECT_FALSE(Value::unit().isPointer());
}

//===----------------------------------------------------------------------===//
// Heap and GC
//===----------------------------------------------------------------------===//

TEST(Heap, AllocatesAndReadsBack) {
  Heap H;
  Value B = H.allocBox(Value::fromFixnum(7));
  EXPECT_EQ(B.object()->slot(0).asFixnum(), 7);

  Value V = H.allocVector(3, Value::fromFixnum(9));
  EXPECT_EQ(V.object()->slotCount(), 3u);
  EXPECT_EQ(V.object()->slot(2).asFixnum(), 9);
}

TEST(Heap, CollectsUnreachable) {
  Heap H;
  for (int I = 0; I != 1000; ++I)
    H.allocTuple(4);
  EXPECT_GE(H.liveObjects(), 1000u);
  H.collect(); // nothing is rooted
  EXPECT_EQ(H.liveObjects(), 0u);
}

TEST(Heap, RootedSurvives) {
  Heap H;
  Value Box = H.allocBox(Value::fromFixnum(1));
  {
    Rooted Root(H, Box);
    H.collect();
    EXPECT_EQ(H.liveObjects(), 1u);
    EXPECT_EQ(Root.get().object()->slot(0).asFixnum(), 1);
  }
  H.collect();
  EXPECT_EQ(H.liveObjects(), 0u);
}

TEST(Heap, MarksTransitively) {
  Heap H;
  Value Inner = H.allocBox(Value::fromFixnum(5));
  Rooted RootInner(H, Inner);
  Value Outer = H.allocBox(Inner);
  Rooted RootOuter(H, Outer);
  // Drop the direct root to Inner; it must survive through Outer.
  Value Tup = H.allocTuple(2);
  (void)Tup;
  RootInner.set(Value::unit());
  H.collect();
  EXPECT_EQ(H.liveObjects(), 2u); // outer box + inner box
  EXPECT_EQ(Outer.object()->slot(0).object()->slot(0).asFixnum(), 5);
}

TEST(Heap, StressWithTinyThreshold) {
  Heap H;
  // Old-generation threshold stress; also, the raw slot stores below are
  // deliberately unbarriered, which only full collections tolerate.
  H.setNurserySize(0);
  H.setGCThreshold(1 << 12);
  Value Keep = H.allocVector(16, Value::fromFixnum(0));
  Rooted Root(H, Keep);
  for (int I = 0; I != 10000; ++I) {
    Value T = H.allocTuple(3);
    T.object()->slot(0) = Value::fromFixnum(I);
    if (I % 16 == 0)
      Root.get().object()->slot((I / 16) % 16) = T;
  }
  EXPECT_GT(H.collections(), 0u);
  // The kept vector still holds live tuples.
  for (uint32_t I = 0; I != 16; ++I) {
    Value Slot = Root.get().object()->slot(I);
    if (Slot.isPointer())
      EXPECT_EQ(Slot.object()->kind(), ObjectKind::Tuple);
  }
}

TEST(Heap, ThresholdIsClampedUnderHeapLimit) {
  // Regression: collect() grew GCThreshold to max(2*live, 8 MiB) even
  // under a hard HeapLimit far below that, so maybeCollect never fired
  // again and every allocation near the limit took the emergency
  // collect-and-retry path in allocateObject — one full collection per
  // ~limit bytes instead of per ~threshold bytes. With the threshold
  // clamped to limit/4, amortized collections keep firing: churning
  // ~19 MiB of garbage under a 2 MiB limit must collect at (at least)
  // the limit/4 cadence, i.e. well over the ~10 collections the
  // emergency path alone would produce.
  Heap H;
  H.setNurserySize(0); // the threshold clamp under test is the old gen's
  H.setHeapLimit(2u << 20);
  for (int I = 0; I != 100000; ++I)
    H.allocTuple(16); // unrooted: garbage by the next collection
  EXPECT_GE(H.collections(), 20u);
  EXPECT_LE(H.peakHeapBytes(), 2u << 20);
}

TEST(Heap, SetHeapLimitClampsImmediately) {
  // The clamp must apply at setHeapLimit time too, not only after the
  // first collection — otherwise the first ~8 MiB of allocations under
  // a small limit would all take the emergency path.
  Heap H;
  H.setNurserySize(0); // the threshold clamp under test is the old gen's
  H.setHeapLimit(1u << 20);
  uint64_t Before = H.collections();
  for (int I = 0; I != 4000; ++I) // ~0.75 MiB of garbage
    H.allocTuple(16);
  EXPECT_GT(H.collections(), Before); // threshold (256 KiB) fired
}

//===----------------------------------------------------------------------===//
// Runtime casts on raw values
//===----------------------------------------------------------------------===//

namespace {

class RuntimeTest : public ::testing::Test {
protected:
  TypeContext Types;
  CoercionFactory F{Types};
  Runtime RT{Types, F, CastMode::Coercions};
  Runtime RTB{Types, F, CastMode::TypeBased};
};

} // namespace

TEST_F(RuntimeTest, InjectAtomicIsIdentity) {
  Value V = Value::fromFixnum(42);
  EXPECT_EQ(RT.inject(V, Types.integer()).Bits, V.Bits);
  EXPECT_EQ(RT.runtimeTypeOf(V), Types.integer());
  EXPECT_EQ(RT.runtimeTypeOf(Value::fromBool(true)), Types.boolean());
  EXPECT_EQ(RT.runtimeTypeOf(Value::unit()), Types.unit());
  EXPECT_EQ(RT.runtimeTypeOf(Value::fromChar('a')), Types.character());
}

TEST_F(RuntimeTest, InjectStructuredUsesDynBox) {
  Value Tup = RT.heap().allocTuple(2);
  const Type *TupTy = Types.tuple({Types.integer(), Types.integer()});
  Value Injected = RT.inject(Tup, TupTy);
  ASSERT_TRUE(Injected.isHeap());
  EXPECT_EQ(Injected.object()->kind(), ObjectKind::DynBox);
  EXPECT_EQ(RT.runtimeTypeOf(Injected), TupTy);
  EXPECT_EQ(RT.dynUnwrap(Injected).Bits, Tup.Bits);
}

TEST_F(RuntimeTest, CoerceIntThroughDyn) {
  const Coercion *Up = F.make(Types.integer(), Types.dyn(), "up");
  const Coercion *Down = F.make(Types.dyn(), Types.integer(), "down");
  Value V = RT.applyCoercion(Value::fromFixnum(7), Up);
  V = RT.applyCoercion(V, Down);
  EXPECT_EQ(V.asFixnum(), 7);
}

TEST_F(RuntimeTest, CoerceWrongProjectionBlames) {
  const Coercion *Up = F.make(Types.integer(), Types.dyn(), "up");
  const Coercion *Down = F.make(Types.dyn(), Types.boolean(), "down-lbl");
  Value V = RT.applyCoercion(Value::fromFixnum(7), Up);
  try {
    RT.applyCoercion(V, Down);
    FAIL() << "expected blame";
  } catch (RuntimeError &E) {
    EXPECT_TRUE(E.isBlame());
    EXPECT_EQ(E.Label, "down-lbl");
  }
}

TEST_F(RuntimeTest, RefProxySingleLayerInCoercionMode) {
  const Type *RefInt = Types.box(Types.integer());
  const Type *RefDyn = Types.box(Types.dyn());
  Value Box = RT.heap().allocBox(Value::fromFixnum(1));
  Rooted Root(RT.heap(), Box);
  Value P = Box;
  for (int I = 0; I != 10; ++I) {
    const Type *From = I % 2 == 0 ? RefInt : RefDyn;
    const Type *To = I % 2 == 0 ? RefDyn : RefInt;
    P = RT.applyCoercion(P, F.make(From, To, "p"));
    Rooted Keep(RT.heap(), P);
    // Never more than one proxy layer.
    if (P.isProxy())
      EXPECT_FALSE(P.object()->slot(0).isProxy());
  }
}

TEST_F(RuntimeTest, RefProxyChainsInTypeBasedMode) {
  const Type *RefInt = Types.box(Types.integer());
  const Type *RefDyn = Types.box(Types.dyn());
  Value Box = RTB.heap().allocBox(Value::fromFixnum(1));
  Rooted Root(RTB.heap(), Box);
  Value P = Box;
  for (int I = 0; I != 10; ++I) {
    const Type *From = I % 2 == 0 ? RefInt : RefDyn;
    const Type *To = I % 2 == 0 ? RefDyn : RefInt;
    P = RTB.applyTypeBased(P, From, To, nullptr);
  }
  Rooted KeepP(RTB.heap(), P);
  // Ten stacked proxies.
  unsigned Depth = 0;
  Value Cursor = P;
  while (Cursor.isProxy()) {
    ++Depth;
    Cursor = Cursor.object()->slot(0);
  }
  EXPECT_EQ(Depth, 10u);
  // Reading through the chain records its length and still works.
  Value Read = RTB.boxRead(P);
  EXPECT_EQ(Read.asFixnum(), 1);
  EXPECT_EQ(RTB.stats().LongestProxyChain, 10u);
}

TEST_F(RuntimeTest, ProxiedWriteConvertsContent) {
  const Type *RefInt = Types.box(Types.integer());
  const Type *RefDyn = Types.box(Types.dyn());
  Value Box = RT.heap().allocBox(Value::fromFixnum(1));
  Rooted Root(RT.heap(), Box);
  Value P = RT.applyCoercion(Box, F.make(RefInt, RefDyn, "p"));
  Rooted KeepP(RT.heap(), P);
  // Writing a Dyn-tagged int through the proxy stores a raw int.
  RT.boxWrite(P, Value::fromFixnum(9));
  EXPECT_EQ(Box.object()->slot(0).asFixnum(), 9);
  EXPECT_EQ(RT.boxRead(P).asFixnum(), 9);
}

TEST_F(RuntimeTest, TupleCoercionCopies) {
  const Type *SrcTy = Types.tuple({Types.integer(), Types.integer()});
  const Type *TgtTy = Types.tuple({Types.dyn(), Types.integer()});
  Value Tup = RT.heap().allocTuple(2);
  Tup.object()->slot(0) = Value::fromFixnum(1);
  Tup.object()->slot(1) = Value::fromFixnum(2);
  Rooted Root(RT.heap(), Tup);
  Value Out = RT.applyCoercion(Tup, F.make(SrcTy, TgtTy, "p"));
  EXPECT_NE(Out.Bits, Tup.Bits); // fresh tuple
  EXPECT_EQ(Out.object()->slot(0).asFixnum(), 1); // int injects inline
  EXPECT_EQ(Out.object()->slot(1).asFixnum(), 2);
}

TEST_F(RuntimeTest, ValueToStringRendersEverything) {
  EXPECT_EQ(RT.valueToString(Value::fromFixnum(42)), "42");
  EXPECT_EQ(RT.valueToString(Value::fromBool(false)), "#f");
  EXPECT_EQ(RT.valueToString(Value::unit()), "()");
  EXPECT_EQ(RT.valueToString(Value::fromChar('q')), "#\\q");
  EXPECT_EQ(RT.valueToString(Value::fromFloat(1.5)), "1.5");
  Value Tup = RT.heap().allocTuple(2);
  Tup.object()->slot(0) = Value::fromFixnum(1);
  Tup.object()->slot(1) = Value::fromBool(true);
  EXPECT_EQ(RT.valueToString(Tup), "#(1 #t)");
  EXPECT_EQ(RT.valueToString(RT.heap().allocBox(Value::fromFixnum(3))),
            "#&3");
}

TEST_F(RuntimeTest, VectorBoundsTrap) {
  Value V = RT.heap().allocVector(2, Value::fromFixnum(0));
  Rooted Root(RT.heap(), V);
  EXPECT_THROW(RT.vectorRef(V, 2), RuntimeError);
  EXPECT_THROW(RT.vectorRef(V, -1), RuntimeError);
  EXPECT_THROW(RT.vectorSet(V, 5, Value::fromFixnum(1)), RuntimeError);
  EXPECT_EQ(RT.vectorLength(V), 2);
}

//===----------------------------------------------------------------------===//
// Fault injection
//===----------------------------------------------------------------------===//

TEST(FaultInjection, CountsEveryAllocation) {
  Heap H;
  FaultInjector FI;
  H.setFaultInjector(&FI);
  for (int I = 0; I != 5; ++I)
    H.allocBox(Value::fromFixnum(I));
  EXPECT_EQ(FI.AllocCount, 5u);
  EXPECT_EQ(FI.ForcedCollections, 0u);
}

TEST(FaultInjection, ScheduledFailureIsOneShot) {
  Heap H;
  FaultInjector FI;
  FI.FailAllocAt = 3;
  H.setFaultInjector(&FI);
  H.allocBox(Value::unit());
  H.allocBox(Value::unit());
  try {
    H.allocBox(Value::unit());
    FAIL() << "allocation #3 should have failed";
  } catch (const RuntimeError &E) {
    EXPECT_EQ(E.Kind, ErrorKind::OutOfMemory);
    EXPECT_NE(E.Message.find("injected"), std::string::npos) << E.str();
  }
  // One-shot: the counter has moved past the trigger.
  Value After = H.allocBox(Value::fromFixnum(4));
  EXPECT_EQ(After.object()->slot(0).asFixnum(), 4);
  EXPECT_EQ(FI.AllocCount, 4u);
}

TEST(FaultInjection, TortureForcesCollectionEveryPeriod) {
  Heap H;
  FaultInjector FI;
  FI.GCTorturePeriod = 3;
  H.setFaultInjector(&FI);
  for (int I = 0; I != 10; ++I)
    H.allocTuple(2);
  EXPECT_EQ(FI.ForcedCollections, 3u); // after allocations 3, 6, 9
  EXPECT_GE(H.collections(), 3u);
}

TEST(FaultInjection, TorturedRootedValuesSurvive) {
  Heap H;
  FaultInjector FI;
  FI.GCTorturePeriod = 1;
  H.setFaultInjector(&FI);
  Value Keep = H.allocVector(8, Value::fromFixnum(0));
  Rooted Root(H, Keep);
  for (int I = 0; I != 8; ++I) {
    Value B = H.allocBox(Value::fromFixnum(I)); // forces a GC
    Root.get().object()->slot(I) = B;
  }
  for (uint32_t I = 0; I != 8; ++I)
    EXPECT_EQ(
        Root.get().object()->slot(I).object()->slot(0).asFixnum(),
        static_cast<int64_t>(I));
}

#ifndef NDEBUG
TEST(HeapDeathTest, PopWithoutPushAsserts) {
  EXPECT_DEATH(
      {
        Heap H;
        H.popTempRoot();
      },
      "popTempRoot without a matching push");
}

TEST(HeapDeathTest, NullTempRootAsserts) {
  EXPECT_DEATH(
      {
        Heap H;
        H.pushTempRoot(nullptr);
      },
      "null temp root");
}
#endif

//===----------------------------------------------------------------------===//
// GC torture over whole programs: collecting on every allocation turns
// any missing root in a runtime helper into a deterministic failure.
//===----------------------------------------------------------------------===//

namespace {

class GCTortureTest : public ::testing::TestWithParam<std::string> {};

} // namespace

TEST_P(GCTortureTest, BenchmarkSurvivesCollectEveryAllocation) {
  const BenchProgram &B = getBenchmark(GetParam());
  Grift G;
  std::string Errors;
  auto Exe = G.compile(B.Source, CastMode::Coercions, Errors);
  ASSERT_TRUE(Exe.has_value()) << Errors;
  FaultInjector Injector;
  Injector.GCTorturePeriod = 1;
  RunResult R = Exe->run(B.TestInput, {}, &Injector);
  ASSERT_TRUE(R.OK) << B.Name << ": " << R.Error.str();
  EXPECT_GT(Injector.ForcedCollections, 0u) << B.Name;
  std::string Out = R.Output;
  while (!Out.empty() && Out.back() == '\n')
    Out.pop_back();
  EXPECT_EQ(Out, B.TestOutput) << B.Name;
}

TEST_P(GCTortureTest, TypeBasedSurvivesFrequentCollections) {
  // Proxy chains in type-based mode allocate aggressively; a coarser
  // period keeps the quadratic torture cost affordable.
  const BenchProgram &B = getBenchmark(GetParam());
  Grift G;
  std::string Errors;
  auto Exe = G.compile(B.Source, CastMode::TypeBased, Errors);
  ASSERT_TRUE(Exe.has_value()) << Errors;
  FaultInjector Injector;
  Injector.GCTorturePeriod = 13;
  RunResult R = Exe->run(B.TestInput, {}, &Injector);
  ASSERT_TRUE(R.OK) << B.Name << ": " << R.Error.str();
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, GCTortureTest,
    ::testing::Values("sieve", "n-body", "tak", "ray", "blackscholes",
                      "matmult", "quicksort", "fft"),
    [](const ::testing::TestParamInfo<std::string> &Info) {
      std::string Name = Info.param;
      for (char &C : Name)
        if (C == '-')
          C = '_';
      return Name;
    });
