//===----------------------------------------------------------------------===//
///
/// \file
/// The persistent program store: round-trip fidelity (a loaded image
/// runs exactly like a fresh compile, across all four cast modes and
/// through μ-coercion graphs), the corruption matrix (truncation at
/// every header boundary, one flipped bit per section, version and key
/// skew — every injected fault must be a counted graceful miss, never
/// UB), crash-consistent writes under injected short-write/fsync
/// faults, size-capped eviction, the makeSub zero-new-nodes invariant
/// after a load, and the file-I/O fault injector itself.
///
//===----------------------------------------------------------------------===//
#include "store/Store.h"

#include "bench_programs/Benchmarks.h"
#include "fuzz/FuzzGen.h"
#include "grift/Grift.h"
#include "service/ExecService.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <string>
#include <vector>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace grift;
using namespace grift::store;

namespace {

/// Fresh per-test cache directory under the build tree's /tmp.
class StoreTest : public ::testing::Test {
protected:
  std::string Dir;

  void SetUp() override {
    std::string Templ = "/tmp/griftstore-test.XXXXXX";
    std::vector<char> Buf(Templ.begin(), Templ.end());
    Buf.push_back('\0');
    ASSERT_NE(::mkdtemp(Buf.data()), nullptr);
    Dir = Buf.data();
  }

  void TearDown() override {
    if (DIR *D = ::opendir(Dir.c_str())) {
      while (dirent *E = ::readdir(D)) {
        std::string Name = E->d_name;
        if (Name != "." && Name != "..")
          ::unlink((Dir + "/" + Name).c_str());
      }
      ::closedir(D);
    }
    ::rmdir(Dir.c_str());
  }

  Store makeStore(uint64_t MaxBytes = 256ull << 20,
                  FaultInjector *Faults = nullptr) {
    StoreConfig C;
    C.Dir = Dir;
    C.MaxBytes = MaxBytes;
    C.Faults = Faults;
    return Store(std::move(C));
  }

  /// Entry files currently on disk (sorted names).
  std::vector<std::string> entries() const {
    std::vector<std::string> Names;
    if (DIR *D = ::opendir(Dir.c_str())) {
      while (dirent *E = ::readdir(D)) {
        std::string Name = E->d_name;
        if (Name != "." && Name != "..")
          Names.push_back(Name);
      }
      ::closedir(D);
    }
    std::sort(Names.begin(), Names.end());
    return Names;
  }

  std::string readFile(const std::string &Path) const {
    std::ifstream In(Path, std::ios::binary);
    std::ostringstream Buf;
    Buf << In.rdbuf();
    return Buf.str();
  }

  void writeFile(const std::string &Path, const std::string &Bytes) const {
    std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
    Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
  }

  /// Compiles \p Source fresh, publishes it, and returns the fresh run's
  /// result text so callers can diff warm against cold.
  std::string compileAndPut(Store &S, const std::string &Source,
                            CastMode Mode, const std::string &Input,
                            uint64_t &KeyOut) {
    Grift G;
    std::string Errors;
    auto Exe = G.compile(Source, Mode, Errors);
    EXPECT_TRUE(Exe.has_value()) << Errors;
    if (!Exe)
      return "";
    KeyOut = Store::key(Source, Mode, /*Optimize=*/false);
    EXPECT_TRUE(S.put(KeyOut, Exe->program()));
    RunResult R = Exe->run(Input);
    EXPECT_TRUE(R.OK) << R.Error.str();
    return R.Output + "|" + R.ResultText;
  }

  /// Loads \p Key into a fresh engine and runs it; "" on miss.
  std::string loadAndRun(Store &S, uint64_t Key, const std::string &Input) {
    Grift G;
    VMProgram Prog;
    if (!S.load(Key, G.types(), G.coercions(), Prog))
      return "";
    Executable Exe = G.adopt(std::move(Prog));
    RunResult R = Exe.run(Input);
    EXPECT_TRUE(R.OK) << R.Error.str();
    return R.Output + "|" + R.ResultText;
  }
};

/// Casts a value of equirecursive stream type through Dyn and back:
/// under Coercions mode the cast table serializes genuine μ coercions
/// (the only cyclic structure in the image).
const char *MuRoundTrip = R"(
(define count-from : (Int -> (Rec s (Tuple Int (-> s))))
  (lambda ([n : Int]) (tuple n (lambda () (count-from (+ n 1))))))
(define st : (Rec s (Tuple Int (-> s))) (count-from 5))
(define d : Dyn (ann st Dyn))
(define st2 : (Rec s (Tuple Int (-> s))) (ann d (Rec s (Tuple Int (-> s)))))
(tuple-proj st2 0)
)";

} // namespace

//===----------------------------------------------------------------------===//
// Round-trip fidelity
//===----------------------------------------------------------------------===//

TEST_F(StoreTest, RoundTripBenchmarksAllModes) {
  Store S = makeStore();
  struct Row {
    const char *Bench;
    const char *Input;
  };
  const Row Rows[] = {{"sieve", "30"}, {"quicksort", "32"}, {"tak", "8 4 2"}};
  for (const Row &R : Rows) {
    const BenchProgram &B = getBenchmark(R.Bench);
    for (CastMode Mode : AllCastModes) {
      uint64_t Key = 0;
      std::string Cold = compileAndPut(S, B.Source, Mode, R.Input, Key);
      std::string Warm = loadAndRun(S, Key, R.Input);
      EXPECT_EQ(Cold, Warm) << R.Bench << " [" << castModeName(Mode) << "]";
    }
  }
  StoreStats SS = S.stats();
  EXPECT_EQ(SS.Hits, 3u * NumCastModes);
  EXPECT_EQ(SS.Corrupt, 0u);
}

/// The image key folds the mode byte, so the same source under two
/// different backends can never alias one cached image.
TEST_F(StoreTest, ImageKeyDiffersPerMode) {
  const BenchProgram &B = getBenchmark("sieve");
  std::vector<uint64_t> Keys;
  for (CastMode Mode : AllCastModes)
    Keys.push_back(Store::key(B.Source, Mode, /*Optimize=*/false));
  for (size_t I = 0; I != Keys.size(); ++I)
    for (size_t J = I + 1; J != Keys.size(); ++J)
      EXPECT_NE(Keys[I], Keys[J])
          << castModeName(AllCastModes[I]) << " vs "
          << castModeName(AllCastModes[J]);
}

TEST_F(StoreTest, RoundTripMuCoercions) {
  Store S = makeStore();
  uint64_t Key = 0;
  std::string Cold =
      compileAndPut(S, MuRoundTrip, CastMode::Coercions, "", Key);
  EXPECT_EQ(Cold, "|5");
  EXPECT_EQ(loadAndRun(S, Key, ""), Cold);
}

TEST_F(StoreTest, RoundTripFuzzedPrograms) {
  Store S = makeStore();
  RNG Gen(0x5707E5EEDULL); // deterministic suite
  unsigned Iters = fuzz::iterationCount(15);
  for (unsigned I = 0; I != Iters; ++I) {
    fuzz::GenOptions Opts;
    Opts.Structural = true;
    Opts.AllowDyn = (I % 2) == 0; // odd iterations stay Static-compatible
    Grift GenG;
    fuzz::ProgramGen PG(GenG.types(), Gen, Opts);
    std::string Source = PG.program();
    for (CastMode Mode : AllCastModes) {
      if (Opts.AllowDyn && Mode == CastMode::Static)
        continue; // Dyn-annotated programs are not Static-typeable
      Grift G;
      std::string Errors;
      auto Exe = G.compile(Source, Mode, Errors);
      ASSERT_TRUE(Exe.has_value()) << Source << "\n" << Errors;
      uint64_t Key = Store::key(Source, Mode, false);
      ASSERT_TRUE(S.put(Key, Exe->program()));
      RunLimits Limits;
      Limits.MaxSteps = 2000000; // generated programs are small; bound anyway
      RunResult Cold = Exe->run("", Limits);

      Grift G2;
      VMProgram Prog;
      ASSERT_TRUE(S.load(Key, G2.types(), G2.coercions(), Prog))
          << loadStatusName(S.lastStatus()) << ": " << S.lastReason();
      Executable Warm = G2.adopt(std::move(Prog));
      RunResult WarmRun = Warm.run("", Limits);
      ASSERT_EQ(Cold.OK, WarmRun.OK) << Source;
      if (Cold.OK) {
        EXPECT_EQ(Cold.ResultText, WarmRun.ResultText) << Source;
        EXPECT_EQ(Cold.Output, WarmRun.Output) << Source;
      } else {
        // Errors must agree exactly — kind, blame label, message.
        EXPECT_EQ(Cold.Error.str(), WarmRun.Error.str()) << Source;
      }
    }
  }
}

/// A load seeds the caller's make() memo: re-deriving any cast the
/// image carries must return the loaded node with zero allocations —
/// the same zero-new-nodes property a warm factory has for makeSub.
TEST_F(StoreTest, ZeroNewNodesAfterLoad) {
  // Both coercion-compiling backends: coercion-passing reuses the same
  // interned normal-form graph, so a warm load carries the invariant
  // over unchanged.
  for (CastMode Mode : {CastMode::Coercions, CastMode::CoercionPassing}) {
    Store S = makeStore();
    uint64_t Key = 0;
    compileAndPut(S, MuRoundTrip, Mode, "", Key);

    Grift G;
    VMProgram Prog;
    ASSERT_TRUE(S.load(Key, G.types(), G.coercions(), Prog));
    bool SawCast = false;
    for (const CastDescriptor &D : Prog.Casts) {
      if (!D.C || !D.Label)
        continue;
      SawCast = true;
      size_t Before = G.coercions().allocatedNodes();
      const Coercion *Again = G.coercions().make(D.Src, D.Tgt, *D.Label);
      EXPECT_EQ(Again, D.C);
      EXPECT_EQ(G.coercions().allocatedNodes(), Before)
          << "re-deriving a loaded cast allocated coercion nodes ["
          << castModeName(Mode) << "]";
    }
    EXPECT_TRUE(SawCast) << castModeName(Mode);
  }
}

//===----------------------------------------------------------------------===//
// Corruption matrix: every fault is a counted miss, never UB
//===----------------------------------------------------------------------===//

TEST_F(StoreTest, CorruptionTruncationAtEveryHeaderBoundary) {
  Store S = makeStore();
  uint64_t Key = 0;
  compileAndPut(S, MuRoundTrip, CastMode::Coercions, "", Key);
  ASSERT_EQ(entries().size(), 1u);
  std::string Path = Dir + "/" + entries()[0];
  std::string Image = readFile(Path);
  ASSERT_GT(Image.size(), sizeof(ImageHeader) + 5 * sizeof(SectionEntry));

  // Every prefix boundary that means something to the parser: empty
  // file, each header field edge, each section-table entry edge, and a
  // mid-payload cut.
  std::vector<size_t> Cuts = {0, 4, 8, 12, 16, 24, 32, 36, sizeof(ImageHeader)};
  for (unsigned E = 1; E <= 5; ++E)
    Cuts.push_back(sizeof(ImageHeader) + E * sizeof(SectionEntry));
  Cuts.push_back(Image.size() - 1);
  Cuts.push_back(Image.size() / 2);

  uint64_t ExpectCorrupt = 0;
  for (size_t Cut : Cuts) {
    writeFile(Path, Image.substr(0, Cut));
    Grift G;
    VMProgram Prog;
    EXPECT_FALSE(S.load(Key, G.types(), G.coercions(), Prog))
        << "truncation at " << Cut << " loaded successfully";
    ++ExpectCorrupt;
    EXPECT_EQ(S.stats().Corrupt, ExpectCorrupt) << "cut " << Cut;
    EXPECT_TRUE(entries().empty())
        << "corrupt entry not deleted after cut " << Cut;
    writeFile(Path, Image); // restore for the next cut
  }
}

TEST_F(StoreTest, CorruptionOneFlippedBitPerSection) {
  Store S = makeStore();
  uint64_t Key = 0;
  compileAndPut(S, MuRoundTrip, CastMode::Coercions, "", Key);
  std::string Path = Dir + "/" + entries()[0];
  std::string Image = readFile(Path);

  // Recover each section's byte range from the (trusted, freshly
  // written) table, then flip one bit inside each — plus one in the
  // header and one in the table itself.
  std::vector<size_t> Targets = {9,                        // header Version
                                 sizeof(ImageHeader) + 3}; // table entry
  ImageHeader H;
  std::memcpy(&H, Image.data(), sizeof H);
  for (uint32_t I = 0; I != H.SectionCount; ++I) {
    SectionEntry E;
    std::memcpy(&E, Image.data() + sizeof H + I * sizeof E, sizeof E);
    Targets.push_back(static_cast<size_t>(E.Offset) + E.Size / 2);
  }

  uint64_t ExpectCorrupt = 0;
  for (size_t Byte : Targets) {
    std::string Bad = Image;
    Bad[Byte] = static_cast<char>(Bad[Byte] ^ 0x10);
    writeFile(Path, Bad);
    Grift G;
    VMProgram Prog;
    EXPECT_FALSE(S.load(Key, G.types(), G.coercions(), Prog))
        << "bit flip at byte " << Byte << " loaded successfully";
    ++ExpectCorrupt;
    EXPECT_EQ(S.stats().Corrupt, ExpectCorrupt) << "byte " << Byte;
    writeFile(Path, Image);
  }

  // The restored pristine image still loads.
  Grift G;
  VMProgram Prog;
  EXPECT_TRUE(S.load(Key, G.types(), G.coercions(), Prog));
}

TEST_F(StoreTest, CorruptionVersionSkewAndKeyMismatch) {
  Store S = makeStore();
  uint64_t Key = 0;
  compileAndPut(S, "(+ 1 2)", CastMode::Coercions, "", Key);
  std::string Path = Dir + "/" + entries()[0];
  std::string Image = readFile(Path);

  // Version skew with a *valid* header CRC — the one way a future
  // serializer's image reaches the version check at all.
  {
    std::string Skewed = Image;
    ImageHeader H;
    std::memcpy(&H, Skewed.data(), sizeof H);
    H.Version = FormatVersion + 7;
    H.HeaderCRC = headerCRC(H);
    std::memcpy(Skewed.data(), &H, sizeof H);
    writeFile(Path, Skewed);
    Grift G;
    VMProgram Prog;
    EXPECT_FALSE(S.load(Key, G.types(), G.coercions(), Prog));
    EXPECT_EQ(S.lastStatus(), LoadStatus::VersionSkew);
    writeFile(Path, Image);
  }

  // A valid image parked under the wrong key (admin copied a file):
  // the header's embedded key must catch it.
  {
    uint64_t OtherKey = Store::key("(+ 2 2)", CastMode::Coercions, false);
    char Name[32];
    std::snprintf(Name, sizeof Name, "%016llx.img",
                  static_cast<unsigned long long>(OtherKey));
    writeFile(Dir + "/" + Name, Image);
    Grift G;
    VMProgram Prog;
    EXPECT_FALSE(S.load(OtherKey, G.types(), G.coercions(), Prog));
    EXPECT_EQ(S.lastStatus(), LoadStatus::KeyMismatch);
  }
}

TEST_F(StoreTest, VerifyAllSweepsCorruptEntriesAndTempFiles) {
  Store S = makeStore();
  uint64_t K1 = 0, K2 = 0;
  compileAndPut(S, "(+ 1 2)", CastMode::Coercions, "", K1);
  compileAndPut(S, "(* 3 4)", CastMode::Coercions, "", K2);
  ASSERT_EQ(entries().size(), 2u);

  // Corrupt one entry's payload and plant a stray temp file, as a crash
  // mid-write would leave.
  std::string Victim = Dir + "/" + entries()[0];
  std::string Bytes = readFile(Victim);
  Bytes[Bytes.size() - 3] ^= 0x40;
  writeFile(Victim, Bytes);
  writeFile(Dir + "/.1234.0.tmp", "half-written garbage");

  Store::VerifyResult V = S.verifyAll();
  EXPECT_EQ(V.Valid, 1u);
  EXPECT_EQ(V.Removed, 1u);
  EXPECT_EQ(V.TmpRemoved, 1u);
  EXPECT_EQ(entries().size(), 1u);
}

//===----------------------------------------------------------------------===//
// Injected write faults: the store stays consistent
//===----------------------------------------------------------------------===//

TEST_F(StoreTest, ShortWriteLeavesNoVisibleEntry) {
  FaultInjector FI;
  FI.ShortWriteAt = 1;
  Store S = makeStore(256ull << 20, &FI);
  Grift G;
  std::string Errors;
  auto Exe = G.compile("(+ 1 2)", CastMode::Coercions, Errors);
  ASSERT_TRUE(Exe.has_value());
  uint64_t Key = Store::key("(+ 1 2)", CastMode::Coercions, false);

  EXPECT_FALSE(S.put(Key, Exe->program()));
  EXPECT_EQ(FI.ShortWritesInjected, 1u);
  // The torn temp file may remain (that is what a crash leaves) but no
  // visible entry may exist, and a lookup is a plain miss.
  for (const std::string &E : entries())
    EXPECT_EQ(E.find(".img"), std::string::npos) << E;
  Grift G2;
  VMProgram Prog;
  EXPECT_FALSE(S.load(Key, G2.types(), G2.coercions(), Prog));
  EXPECT_EQ(S.lastStatus(), LoadStatus::Missing);
  EXPECT_EQ(S.stats().Corrupt, 0u);

  // The sweep clears the debris; the next (unfaulted) put succeeds.
  Store::VerifyResult V = S.verifyAll();
  EXPECT_EQ(V.TmpRemoved, 1u);
  EXPECT_TRUE(S.put(Key, Exe->program()));
  EXPECT_TRUE(S.load(Key, G2.types(), G2.coercions(), Prog));
}

TEST_F(StoreTest, FsyncFailureIsCleanNonPublish) {
  FaultInjector FI;
  FI.FailFsyncAt = 1;
  Store S = makeStore(256ull << 20, &FI);
  Grift G;
  std::string Errors;
  auto Exe = G.compile("(+ 1 2)", CastMode::Coercions, Errors);
  ASSERT_TRUE(Exe.has_value());
  uint64_t Key = Store::key("(+ 1 2)", CastMode::Coercions, false);

  EXPECT_FALSE(S.put(Key, Exe->program()));
  EXPECT_EQ(FI.FsyncFailuresInjected, 1u);
  EXPECT_TRUE(entries().empty()); // clean failure: temp unlinked
  EXPECT_TRUE(S.put(Key, Exe->program()));
}

TEST_F(StoreTest, ReadBitFlipIsCountedCorruptMissDiskIntact) {
  FaultInjector FI;
  Store S = makeStore(256ull << 20, &FI);
  uint64_t Key = 0;
  compileAndPut(S, MuRoundTrip, CastMode::Coercions, "", Key);
  std::string Path = Dir + "/" + entries()[0];
  std::string OnDisk = readFile(Path);

  FI.FlipReadBitAt = FI.FileReadCount + 1;
  FI.FlipReadBitIndex = 8 * (sizeof(ImageHeader) + 12) + 3; // section table
  Grift G;
  VMProgram Prog;
  EXPECT_FALSE(S.load(Key, G.types(), G.coercions(), Prog));
  EXPECT_EQ(FI.ReadBitsFlipped, 1u);
  EXPECT_EQ(S.stats().Corrupt, 1u);
  // The store deletes the entry (it cannot distinguish a decayed sector
  // from persistent damage); a clean re-put fully recovers.
  EXPECT_TRUE(entries().empty());
  uint64_t Key2 = 0;
  EXPECT_EQ(compileAndPut(S, MuRoundTrip, CastMode::Coercions, "", Key2),
            "|5");
  EXPECT_EQ(Key2, Key);
  EXPECT_EQ(loadAndRun(S, Key, ""), "|5");
  (void)OnDisk;
}

//===----------------------------------------------------------------------===//
// Eviction
//===----------------------------------------------------------------------===//

TEST_F(StoreTest, EvictionKeepsNewestUnderCap) {
  // Cap small enough that a handful of entries overflow it.
  Store Probe = makeStore();
  uint64_t ProbeKey = 0;
  compileAndPut(Probe, "(+ 1 1)", CastMode::Coercions, "", ProbeKey);
  uint64_t OneEntry = readFile(Dir + "/" + entries()[0]).size();
  TearDown();
  SetUp();

  Store S = makeStore(/*MaxBytes=*/OneEntry * 2 + OneEntry / 2);
  std::vector<uint64_t> Keys;
  for (int I = 0; I != 6; ++I) {
    std::string Source = "(+ " + std::to_string(I) + " 1)";
    uint64_t Key = 0;
    compileAndPut(S, Source, CastMode::Coercions, "", Key);
    Keys.push_back(Key);
  }
  StoreStats SS = S.stats();
  EXPECT_GE(SS.Evicted, 1u);
  EXPECT_LE(entries().size(), 3u);

  // The most recent entry always survives.
  Grift G;
  VMProgram Prog;
  EXPECT_TRUE(S.load(Keys.back(), G.types(), G.coercions(), Prog))
      << loadStatusName(S.lastStatus());
}

TEST_F(StoreTest, EvictionSparesJustWrittenUnderMTimeTies) {
  // Two published entries pinned to one identical future mtime: the
  // nanosecond-mtime sort is a tie, and whatever is written next is the
  // mtime-*oldest* file in the directory. The entry just written must
  // survive anyway (it is exempted by identity, not by sort position),
  // and the tie between the other two must resolve by the deterministic
  // secondary key (path), not by readdir order.
  uint64_t K1 = 0, K2 = 0;
  {
    Store Big = makeStore();
    compileAndPut(Big, getBenchmark("sieve").Source, CastMode::Coercions,
                  "30", K1);
    compileAndPut(Big, getBenchmark("quicksort").Source, CastMode::Coercions,
                  "32", K2);
  }
  std::vector<std::string> Pinned = entries();
  ASSERT_EQ(Pinned.size(), 2u);
  struct timespec Future[2];
  Future[0].tv_sec = ::time(nullptr) + 1000;
  Future[0].tv_nsec = 123456789;
  Future[1] = Future[0];
  uint64_t PinnedBytes = 0;
  for (const std::string &Name : Pinned) {
    std::string Path = Dir + "/" + Name;
    ASSERT_EQ(::utimensat(AT_FDCWD, Path.c_str(), Future, 0), 0);
    struct stat St;
    ASSERT_EQ(::stat(Path.c_str(), &St), 0);
    PinnedBytes += static_cast<uint64_t>(St.st_size);
  }

  // Cap at exactly the two pinned entries: the next (tiny) put must
  // evict exactly one of them to get back under the cap.
  Store S = makeStore(/*MaxBytes=*/PinnedBytes);
  uint64_t K3 = 0;
  compileAndPut(S, "(+ 40 2)", CastMode::Coercions, "", K3);
  EXPECT_EQ(S.stats().Evicted, 1u);

  // The just-written entry is loadable despite being mtime-oldest.
  Grift G;
  VMProgram Prog;
  EXPECT_TRUE(S.load(K3, G.types(), G.coercions(), Prog))
      << loadStatusName(S.lastStatus());

  // Of the tied pair, the lexicographically-first path was the victim.
  std::vector<std::string> After = entries();
  EXPECT_EQ(std::count(After.begin(), After.end(), Pinned[0]), 0)
      << "tie must evict the lexicographically-first path";
  EXPECT_EQ(std::count(After.begin(), After.end(), Pinned[1]), 1)
      << "tie must keep the lexicographically-second path";
}

//===----------------------------------------------------------------------===//
// Service integration: store position in the lookup chain
//===----------------------------------------------------------------------===//

TEST_F(StoreTest, ExecServiceWarmStartsAcrossRestart) {
  service::ServiceConfig Config;
  Config.Threads = 2;
  Config.CacheDir = Dir;

  const char *Source = "(ann (ann 41 Dyn) Int)";
  {
    service::ExecService Service(Config);
    service::JobSpec Spec;
    Spec.Source = Source;
    service::JobResult R = Service.submit(Spec).get();
    ASSERT_EQ(R.Status, service::JobStatus::Done);
    service::ServiceStats SS = Service.stats();
    EXPECT_EQ(SS.StoreHits, 0u);
    EXPECT_GE(SS.StoreMisses, 1u);
  }
  {
    // A "restarted" service over the same cache dir: the first compile
    // of the same job is served from the image, not the frontend.
    service::ExecService Service(Config);
    service::JobSpec Spec;
    Spec.Source = Source;
    service::JobResult R = Service.submit(Spec).get();
    ASSERT_EQ(R.Status, service::JobStatus::Done);
    EXPECT_EQ(R.ResultText, "41");
    service::ServiceStats SS = Service.stats();
    EXPECT_GE(SS.StoreHits, 1u);
    EXPECT_EQ(SS.StoreCorrupt, 0u);
  }
}

//===----------------------------------------------------------------------===//
// The injector itself
//===----------------------------------------------------------------------===//

TEST(FileFaults, OneShotOneBasedCountersAdvanceDisarmed) {
  FaultInjector FI;

  // Disarmed: counters advance, nothing fires.
  EXPECT_FALSE(FI.shouldShortWrite());
  EXPECT_FALSE(FI.shouldFailFsync());
  uint64_t Bit = 0;
  EXPECT_FALSE(FI.shouldFlipReadBit(Bit));
  EXPECT_EQ(FI.FileWriteCount, 1u);
  EXPECT_EQ(FI.FsyncCount, 1u);
  EXPECT_EQ(FI.FileReadCount, 1u);

  // 1-based scheduling counts from the disarmed operations already
  // observed: arming "at 3" fires on the third operation overall.
  FI.ShortWriteAt = 3;
  EXPECT_FALSE(FI.shouldShortWrite()); // #2
  EXPECT_TRUE(FI.shouldShortWrite());  // #3 fires
  EXPECT_FALSE(FI.shouldShortWrite()); // #4: one-shot
  EXPECT_EQ(FI.ShortWritesInjected, 1u);

  FI.FailFsyncAt = 2;
  EXPECT_TRUE(FI.shouldFailFsync()); // #2 fires
  EXPECT_FALSE(FI.shouldFailFsync());
  EXPECT_EQ(FI.FsyncFailuresInjected, 1u);

  FI.FlipReadBitAt = 2;
  FI.FlipReadBitIndex = 17;
  EXPECT_TRUE(FI.shouldFlipReadBit(Bit)); // #2 fires
  EXPECT_EQ(Bit, 17u);
  EXPECT_FALSE(FI.shouldFlipReadBit(Bit));
  EXPECT_EQ(FI.ReadBitsFlipped, 1u);
}

//===----------------------------------------------------------------------===//
// validateImage directly (no filesystem)
//===----------------------------------------------------------------------===//

TEST(ValidateImage, AcceptsFreshRejectsTrailingGarbage) {
  Grift G;
  std::string Errors;
  auto Exe = G.compile("(+ 1 2)", CastMode::Coercions, Errors);
  ASSERT_TRUE(Exe.has_value());
  std::string Image = serializeProgram(Exe->program(), /*KeyHash=*/99);

  ImageSections Sections;
  std::string Reason;
  EXPECT_EQ(validateImage(reinterpret_cast<const uint8_t *>(Image.data()),
                          Image.size(), 99, Sections, Reason),
            LoadStatus::Hit)
      << Reason;

  // Key checked when requested, ignored when the caller passes 0.
  EXPECT_EQ(validateImage(reinterpret_cast<const uint8_t *>(Image.data()),
                          Image.size(), 100, Sections, Reason),
            LoadStatus::KeyMismatch);
  EXPECT_EQ(validateImage(reinterpret_cast<const uint8_t *>(Image.data()),
                          Image.size(), 0, Sections, Reason),
            LoadStatus::Hit);

  std::string Padded = Image + "x";
  EXPECT_EQ(validateImage(reinterpret_cast<const uint8_t *>(Padded.data()),
                          Padded.size(), 99, Sections, Reason),
            LoadStatus::TruncatedFile);

  EXPECT_EQ(validateImage(nullptr, 0, 0, Sections, Reason),
            LoadStatus::TruncatedHeader);
}
