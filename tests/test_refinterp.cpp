//===----------------------------------------------------------------------===//
///
/// \file
/// Differential tests: the definitional interpreter for the Appendix B
/// semantics (src/refinterp) against the bytecode VM. Same programs must
/// produce the same output, the same result, and the same blame.
///
//===----------------------------------------------------------------------===//
#include "bench_programs/Benchmarks.h"
#include "grift/Grift.h"
#include "lattice/Lattice.h"
#include "refinterp/RefInterp.h"

#include <gtest/gtest.h>

using namespace grift;

namespace {

class RefInterpTest : public ::testing::Test {
protected:
  Grift G;

  /// Runs source through both the reference interpreter and the VM
  /// (coercion mode) and checks full agreement. Returns the VM result.
  RunResult differential(std::string_view Source, std::string Input = "") {
    std::string Errors;
    auto Ast = G.parse(Source, Errors);
    EXPECT_TRUE(Ast.has_value()) << Errors;
    return differentialAst(*Ast, std::move(Input));
  }

  RunResult differentialAst(const Program &Ast, std::string Input = "") {
    std::string Errors;
    auto Core = G.check(Ast, Errors);
    EXPECT_TRUE(Core.has_value()) << Errors;
    auto Exe = G.compileAst(Ast, CastMode::Coercions, Errors);
    EXPECT_TRUE(Exe.has_value()) << Errors;
    RunResult VM = Exe->run(Input);
    refinterp::RefResult Ref =
        refinterp::interpret(G.types(), G.coercions(), *Core, Input);

    EXPECT_EQ(VM.OK, Ref.OK) << "VM: "
                             << (VM.OK ? VM.ResultText : VM.Error.str())
                             << "\nRef: "
                             << (Ref.OK ? Ref.ResultText : Ref.Message);
    EXPECT_EQ(VM.Output, Ref.Output);
    if (VM.OK && Ref.OK) {
      EXPECT_EQ(VM.ResultText, Ref.ResultText);
    } else if (!VM.OK && !Ref.OK) {
      EXPECT_EQ(VM.Error.isBlame(), Ref.isBlame());
      if (VM.Error.isBlame())
        EXPECT_EQ(VM.Error.Label, Ref.Label);
    }
    return VM;
  }
};

} // namespace

TEST_F(RefInterpTest, CoreForms) {
  differential("42");
  differential("(fl+ 1.5 2.0)");
  differential("(if (< 1 2) #\\a #\\b)");
  differential("(let ([x 1] [y 2]) (tuple x y (+ x y)))");
  differential("(begin (print-int 1) (print-char #\\,) (print-int 2) ())");
  differential("(repeat (i 0 10) (acc : Int 1) (* acc 2))");
  differential("(unbox (box (tuple 1 2)))");
  differential("(let ([v (make-vector 4 1)])"
               "  (begin (vector-set! v 2 9)"
               "         (tuple (vector-ref v 2) (vector-length v))))");
  differential("(+ (read-int) (read-int))", "40 2");
}

TEST_F(RefInterpTest, FunctionsAndRecursion) {
  differential("((lambda ([x : Int]) (* x x)) 9)");
  differential("(define (fact [n : Int]) : Int"
               "  (if (= n 0) 1 (* n (fact (- n 1))))) (fact 10)");
  differential(
      "(letrec ([e? : (Int -> Bool)"
      "           (lambda ([n : Int]) : Bool (if (= n 0) #t (o? (- n 1))))]"
      "         [o? : (Int -> Bool)"
      "           (lambda ([n : Int]) : Bool (if (= n 0) #f (e? (- n 1))))])"
      "  (tuple (e? 10) (o? 10)))");
  differential("(let ([mk (lambda ([n : Int]) (lambda ([m : Int]) (+ n m)))])"
               "  ((mk 40) 2))");
}

TEST_F(RefInterpTest, GradualFlows) {
  differential("(ann (ann 42 Dyn) Int)");
  differential("((lambda (x) (+ x 1)) (ann 41 Dyn))");
  differential("((lambda (f) (f 21)) (lambda ([x : Int]) : Int (* 2 x)))");
  differential("(let ([f (ann (lambda ([x : Int]) : Int (+ x 1)) Dyn)])"
               "  ((ann f (Int -> Int)) 41))");
  differential("((lambda (b) (begin (box-set! b 5) (unbox b))) (box 1))");
  differential("((lambda (v) (vector-ref v 1)) (make-vector 3 8))");
  differential("((lambda (t) (tuple-proj t 1)) (tuple 1 2.5))");
  differential("(define f : (Dyn -> Dyn) (lambda ([x : Int]) x)) (f 7)");
}

TEST_F(RefInterpTest, BlameAgreement) {
  differential("(ann (ann #t Dyn) Int)");
  differential("((lambda (f) (f 1)) 5)");
  differential("(define f : (Dyn -> Dyn) (lambda ([x : Int]) x)) (f #t)");
  differential("(let ([v : (Vect Int) (make-vector 2 0)])"
               "  (let ([w : (Vect Dyn) v]) (vector-set! w 0 #f)))");
  differential("(vector-ref (make-vector 2 0) 5)");
  differential("(/ 1 0)");
}

TEST_F(RefInterpTest, ProxyCompression) {
  // The cast chain from test_vm, through both engines.
  differential(
      "(define f : (Int -> Int) (lambda ([x : Int]) : Int (+ x 1)))"
      "(define g1 : (Dyn -> Dyn) f)"
      "(define g2 : (Int -> Dyn) g1)"
      "(define g3 : (Dyn -> Int) g2)"
      "(define g4 : (Int -> Int) g3)"
      "(g4 41)");
  // even/odd CPS at a small n (the ref interpreter has no tail calls).
  differential(evenOddSource(), "200");
}

TEST_F(RefInterpTest, RecursiveTypes) {
  differential(
      "(define (count-from [n : Int]) : (Rec s (Tuple Int (-> s)))"
      "  (tuple n (lambda () (count-from (+ n 1)))))"
      "(define (nth [s : (Rec s (Tuple Int (-> s)))] [k : Int]) : Int"
      "  (if (= k 0) (tuple-proj s 0) (nth ((tuple-proj s 1)) (- k 1))))"
      "(nth (count-from 5) 7)");
}

//===----------------------------------------------------------------------===//
// Whole benchmarks, typed and erased
//===----------------------------------------------------------------------===//

namespace {
class RefInterpBenchmarks : public ::testing::TestWithParam<int> {};
} // namespace

TEST_P(RefInterpBenchmarks, AgreesWithVM) {
  const BenchProgram &B = allBenchmarks()[GetParam()];
  Grift G;
  std::string Errors;
  auto Ast = G.parse(B.Source, Errors);
  ASSERT_TRUE(Ast.has_value()) << Errors;

  auto check = [&](const Program &Prog) {
    auto Core = G.check(Prog, Errors);
    ASSERT_TRUE(Core.has_value()) << Errors;
    refinterp::RefResult Ref =
        refinterp::interpret(G.types(), G.coercions(), *Core, B.TestInput);
    ASSERT_TRUE(Ref.OK) << B.Name << ": " << Ref.Message;
    EXPECT_EQ(Ref.Output, B.TestOutput) << B.Name;
  };

  check(*Ast);                          // typed
  check(eraseTypes(*Ast, G.types()));   // fully dynamic
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, RefInterpBenchmarks,
                         ::testing::Range(0, 8), [](const auto &Info) {
                           std::string Name =
                               allBenchmarks()[Info.param].Name;
                           for (char &C : Name)
                             if (C == '-')
                               C = '_';
                           return Name;
                         });

TEST_F(RefInterpTest, SampledConfigurationsAgreeWithVM) {
  const BenchProgram &B = getBenchmark("quicksort");
  std::string Errors;
  auto Ast = G.parse(B.Source, Errors);
  ASSERT_TRUE(Ast.has_value()) << Errors;
  auto Configs = sampleFineGrained(*Ast, G.types(), 3, 1, 0xD1FF);
  for (const Configuration &C : Configs)
    differentialAst(C.Prog, B.TestInput);
}
