//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end tests: compile and run GTLC+ programs through the full
/// pipeline in every cast mode. Includes the semantic soundness property
/// for coercions (composing equals sequential application) exercised via
/// programs, the paper's even/odd and quicksort behaviours, blame
/// tracking, and mode-equivalence checks.
///
//===----------------------------------------------------------------------===//
#include "grift/Grift.h"

#include <gtest/gtest.h>

using namespace grift;

namespace {

class VMTest : public ::testing::Test {
protected:
  Grift G;

  RunResult runMode(std::string_view Source, CastMode Mode,
                    std::string Input = "") {
    std::string Errors;
    auto Exe = G.compile(Source, Mode, Errors);
    EXPECT_TRUE(Exe.has_value()) << Errors;
    if (!Exe) {
      RunResult R;
      R.Error = {ErrorKind::Trap, "", "compile failed: " + Errors};
      return R;
    }
    return Exe->run(std::move(Input));
  }

  /// Runs under coercions and checks the result text.
  void expectResult(std::string_view Source, std::string_view Expected) {
    RunResult R = runMode(Source, CastMode::Coercions);
    ASSERT_TRUE(R.OK) << R.Error.str() << " for " << Source;
    EXPECT_EQ(R.ResultText, Expected) << Source;
  }

  /// Runs under both gradual modes and expects identical result text.
  std::string expectModesAgree(std::string_view Source) {
    RunResult A = runMode(Source, CastMode::Coercions);
    RunResult B = runMode(Source, CastMode::TypeBased);
    EXPECT_EQ(A.OK, B.OK) << Source;
    if (A.OK && B.OK) {
      EXPECT_EQ(A.ResultText, B.ResultText) << Source;
      EXPECT_EQ(A.Output, B.Output) << Source;
    }
    return A.OK ? A.ResultText : std::string();
  }

  void expectBlame(std::string_view Source, CastMode Mode,
                   std::string_view Label = "") {
    RunResult R = runMode(Source, Mode);
    ASSERT_FALSE(R.OK) << "expected blame for " << Source;
    EXPECT_TRUE(R.Error.isBlame()) << R.Error.str();
    if (!Label.empty())
      EXPECT_EQ(R.Error.Label, Label) << Source;
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Basic semantics
//===----------------------------------------------------------------------===//

TEST_F(VMTest, Literals) {
  expectResult("42", "42");
  expectResult("-17", "-17");
  expectResult("3.5", "3.5");
  expectResult("#t", "#t");
  expectResult("#\\a", "#\\a");
  expectResult("()", "()");
}

TEST_F(VMTest, IntegerArithmetic) {
  expectResult("(+ 1 2)", "3");
  expectResult("(- 1 2)", "-1");
  expectResult("(* 6 7)", "42");
  expectResult("(/ 7 2)", "3");
  expectResult("(% 7 2)", "1");
  expectResult("(< 1 2)", "#t");
  expectResult("(>= 2 2)", "#t");
  expectResult("(= 1 2)", "#f");
}

TEST_F(VMTest, FloatArithmetic) {
  expectResult("(fl+ 1.5 2.25)", "3.75");
  expectResult("(fl* 2.0 4.0)", "8.0");
  expectResult("(flsqrt 9.0)", "3.0");
  expectResult("(fl< 1.0 2.0)", "#t");
  expectResult("(flmin 3.0 1.0)", "1.0");
  expectResult("(int->float 2)", "2.0");
  expectResult("(float->int 2.75)", "2");
}

TEST_F(VMTest, Conversions) {
  expectResult("(char->int #\\a)", "97");
  expectResult("(int->char 98)", "#\\b");
  expectResult("(not #f)", "#t");
}

TEST_F(VMTest, IfAndSugar) {
  expectResult("(if #t 1 2)", "1");
  expectResult("(if #f 1 2)", "2");
  expectResult("(and #t #t #f)", "#f");
  expectResult("(or #f #f #t)", "#t");
  // when/unless produce () on the missing branch, so bodies are Unit.
  RunResult W = runMode("(when (< 1 2) (print-int 5))", CastMode::Coercions);
  ASSERT_TRUE(W.OK);
  EXPECT_EQ(W.Output, "5");
  expectResult("(unless (< 1 2) (print-int 5))", "()");
  expectResult("(cond [(< 2 1) 0] [(< 1 2) 1] [else 2])", "1");
}

TEST_F(VMTest, LetAndBegin) {
  expectResult("(let ([x 1] [y 2]) (+ x y))", "3");
  expectResult("(let ([x 1]) (let ([x 2] [y x]) (+ x y)))", "3"); // parallel
  expectResult("(begin 1 2 3)", "3");
}

TEST_F(VMTest, LambdaAndApplication) {
  expectResult("((lambda ([x : Int]) (* x x)) 7)", "49");
  expectResult("((lambda (x y) x) 1 2)", "1");
  expectResult("(let ([f (lambda ([x : Int]) : Int (+ x 1))]) (f (f 40)))",
               "42");
}

TEST_F(VMTest, ClosuresCapture) {
  expectResult("(let ([make (lambda ([n : Int])"
               "              (lambda ([m : Int]) (+ n m)))])"
               "  (let ([add5 (make 5)]) (add5 37)))",
               "42");
  // Nested capture through two lambda levels.
  expectResult("(let ([a 1])"
               "  (let ([f (lambda () (lambda () a))])"
               "    ((f))))",
               "1");
}

TEST_F(VMTest, TopLevelRecursion) {
  expectResult("(define (fact [n : Int]) : Int"
               "  (if (= n 0) 1 (* n (fact (- n 1)))))"
               "(fact 10)",
               "3628800");
}

TEST_F(VMTest, MutualRecursion) {
  expectResult(
      "(define (even? [n : Int]) : Bool (if (= n 0) #t (odd? (- n 1))))"
      "(define (odd? [n : Int]) : Bool (if (= n 0) #f (even? (- n 1))))"
      "(even? 100)",
      "#t");
}

TEST_F(VMTest, LetrecLocalRecursion) {
  expectResult("(letrec ([fib : (Int -> Int)"
               "           (lambda ([n : Int]) : Int"
               "             (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))])"
               "  (fib 15))",
               "610");
  // Mutually recursive letrec.
  expectResult(
      "(letrec ([e? : (Int -> Bool)"
      "           (lambda ([n : Int]) : Bool (if (= n 0) #t (o? (- n 1))))]"
      "         [o? : (Int -> Bool)"
      "           (lambda ([n : Int]) : Bool (if (= n 0) #f (e? (- n 1))))])"
      "  (e? 41))",
      "#f");
}

TEST_F(VMTest, TailCallsRunDeep) {
  expectResult("(define (loop [n : Int] [acc : Int]) : Int"
               "  (if (= n 0) acc (loop (- n 1) (+ acc 1))))"
               "(loop 1000000 0)",
               "1000000");
}

TEST_F(VMTest, RepeatLoop) {
  expectResult("(repeat (i 0 10) (acc : Int 0) (+ acc i))", "45");
  expectResult("(repeat (i 0 0) (acc : Int 7) (+ acc 1))", "7");
  expectResult("(let ([v (make-vector 5 0)])"
               "  (begin (repeat (i 0 5) (vector-set! v i (* i i)))"
               "         (vector-ref v 4)))",
               "16");
}

TEST_F(VMTest, TuplesWork) {
  expectResult("(tuple 1 2.5 #t)", "#(1 2.5 #t)");
  expectResult("(tuple-proj (tuple 1 2) 1)", "2");
  expectResult("(let ([p (tuple (tuple 1 2) 3)])"
               "  (tuple-proj (tuple-proj p 0) 1))",
               "2");
}

TEST_F(VMTest, BoxesWork) {
  expectResult("(unbox (box 41))", "41");
  expectResult("(let ([b (box 1)]) (begin (box-set! b 42) (unbox b)))", "42");
}

TEST_F(VMTest, VectorsWork) {
  expectResult("(vector-length (make-vector 7 0))", "7");
  expectResult("(let ([v (make-vector 3 9)]) (vector-ref v 2))", "9");
  expectResult("(let ([v (make-vector 3 0)])"
               "  (begin (vector-set! v 1 5) (vector-ref v 1)))",
               "5");
}

TEST_F(VMTest, VectorBoundsTrap) {
  RunResult R = runMode("(vector-ref (make-vector 2 0) 5)",
                        CastMode::Coercions);
  ASSERT_FALSE(R.OK);
  EXPECT_FALSE(R.Error.isBlame());
}

TEST_F(VMTest, PrintingAndInput) {
  RunResult R = runMode("(begin (print-int 42) (print-char #\\newline)"
                        "       (print-float 1.5) (print-bool #t) ())",
                        CastMode::Coercions);
  ASSERT_TRUE(R.OK) << R.Error.str();
  EXPECT_EQ(R.Output, "42\n1.5#t");
  RunResult R2 =
      runMode("(+ (read-int) (read-int))", CastMode::Coercions, " 40  2 ");
  ASSERT_TRUE(R2.OK);
  EXPECT_EQ(R2.ResultText, "42");
}

TEST_F(VMTest, TimeFormMeasures) {
  RunResult R = runMode("(time (repeat (i 0 1000) (acc : Int 0) (+ acc i)))",
                        CastMode::Coercions);
  ASSERT_TRUE(R.OK);
  EXPECT_EQ(R.ResultText, "499500");
  EXPECT_GE(R.Stats.TimedNanos, 0);
}

//===----------------------------------------------------------------------===//
// Gradual typing semantics
//===----------------------------------------------------------------------===//

TEST_F(VMTest, CastThroughDyn) {
  expectModesAgree("(ann (ann 42 Dyn) Int)");
  expectModesAgree("(ann (ann 2.5 Dyn) Float)");
  expectModesAgree("(ann (ann #t Dyn) Bool)");
}

TEST_F(VMTest, DynArithmeticViaProjection) {
  expectResult("(lambda (x) x)", "#<procedure>");
  EXPECT_EQ(expectModesAgree("((lambda (x) (+ x 1)) (ann 41 Dyn))"), "42");
}

TEST_F(VMTest, AppDynWorks) {
  EXPECT_EQ(expectModesAgree("((lambda (f) (f 21))"
                             " (lambda ([x : Int]) : Int (* 2 x)))"),
            "42");
}

TEST_F(VMTest, AppDynNonFunctionBlames) {
  expectBlame("((lambda (f) (f 1)) 5)", CastMode::Coercions);
  expectBlame("((lambda (f) (f 1)) 5)", CastMode::TypeBased);
}

TEST_F(VMTest, AppDynArityBlames) {
  expectBlame("((lambda (f) (f 1 2)) (lambda ([x : Int]) x))",
              CastMode::Coercions);
}

TEST_F(VMTest, ProjectionBlameCarriesLocation) {
  // The failing cast is the (ann d Bool) projection on line 1.
  RunResult R = runMode("((lambda ([d : Dyn]) (ann d Bool)) 42)",
                        CastMode::Coercions);
  ASSERT_FALSE(R.OK);
  EXPECT_TRUE(R.Error.isBlame());
  EXPECT_EQ(R.Error.Label, "1:22");
  // Same blame in type-based mode.
  RunResult R2 = runMode("((lambda ([d : Dyn]) (ann d Bool)) 42)",
                         CastMode::TypeBased);
  ASSERT_FALSE(R2.OK);
  EXPECT_EQ(R2.Error.Label, "1:22");
}

TEST_F(VMTest, HigherOrderCastDefersBlame) {
  // Casting (Int -> Int) to (Dyn -> Dyn) succeeds; calling it with a
  // non-Int blames at the call.
  const char *Source = "(define f : (Dyn -> Dyn) (lambda ([x : Int]) x))"
                       "(f #t)";
  expectBlame(Source, CastMode::Coercions);
  expectBlame(Source, CastMode::TypeBased);
  // Calling with an Int succeeds.
  EXPECT_EQ(expectModesAgree(
                "(define f : (Dyn -> Dyn) (lambda ([x : Int]) x))(f 7)"),
            "7");
}

TEST_F(VMTest, FunctionProxyRoundTrip) {
  // Cast a function to Dyn and back, then call it.
  EXPECT_EQ(expectModesAgree(
                "(let ([f (ann (lambda ([x : Int]) : Int (+ x 1)) Dyn)])"
                "  ((ann f (Int -> Int)) 41))"),
            "42");
}

TEST_F(VMTest, CoerceComposeEqualsSequentialApply) {
  // Semantic soundness of composition: a value pushed through a chain of
  // casts one at a time equals the value pushed through repeated
  // proxy-composition (coercion mode composes on each cast).
  const char *Chain =
      "(define f : (Int -> Int) (lambda ([x : Int]) : Int (+ x 1)))"
      "(define g1 : (Dyn -> Dyn) f)"   // Int->Int => Dyn->Dyn
      "(define g2 : (Int -> Dyn) g1)"  // and back partway
      "(define g3 : (Dyn -> Int) g2)"  // ...
      "(define g4 : (Int -> Int) g3)"  // full circle
      "(g4 41)";
  EXPECT_EQ(expectModesAgree(Chain), "42");
}

TEST_F(VMTest, DynBoxOperations) {
  EXPECT_EQ(expectModesAgree("((lambda (b) (unbox b)) (box 41))"), "41");
  EXPECT_EQ(expectModesAgree("((lambda (b) (begin (box-set! b 5) (unbox b)))"
                             " (box 1))"),
            "5");
  expectBlame("((lambda (b) (unbox b)) 3)", CastMode::Coercions);
}

TEST_F(VMTest, DynVectorOperations) {
  EXPECT_EQ(expectModesAgree("((lambda (v) (vector-ref v 1))"
                             " (make-vector 3 9))"),
            "9");
  EXPECT_EQ(expectModesAgree("((lambda (v) (vector-length v))"
                             " (make-vector 4 0))"),
            "4");
  EXPECT_EQ(
      expectModesAgree("((lambda (v) (begin (vector-set! v 0 7)"
                       "                    (vector-ref v 0)))"
                       " (make-vector 2 0))"),
      "7");
  expectBlame("((lambda (v) (vector-ref v 0)) 5)", CastMode::TypeBased);
}

TEST_F(VMTest, DynTupleProjection) {
  EXPECT_EQ(expectModesAgree("((lambda (t) (tuple-proj t 1)) (tuple 1 2))"),
            "2");
  expectBlame("((lambda (t) (tuple-proj t 5)) (tuple 1 2))",
              CastMode::Coercions);
}

TEST_F(VMTest, ProxiedVectorThroughAnnotation) {
  // Write through a (Vect Dyn) view of a (Vect Int); read back raw.
  const char *Source = "(let ([v : (Vect Int) (make-vector 3 0)])"
                       "  (let ([w : (Vect Dyn) v])"
                       "    (begin (vector-set! w 1 (ann 5 Dyn))"
                       "           (vector-ref v 1))))";
  EXPECT_EQ(expectModesAgree(Source), "5");
}

TEST_F(VMTest, ProxiedWriteOfWrongTypeBlames) {
  const char *Source = "(let ([v : (Vect Int) (make-vector 3 0)])"
                       "  (let ([w : (Vect Dyn) v])"
                       "    (vector-set! w 1 (ann #t Dyn))))";
  expectBlame(Source, CastMode::Coercions);
  expectBlame(Source, CastMode::TypeBased);
}

TEST_F(VMTest, RecursiveTypeStream) {
  // An integer stream as in the sieve benchmark.
  const char *Source =
      "(define (count-from [n : Int]) : (Rec s (Tuple Int (-> s)))"
      "  (tuple n (lambda () (count-from (+ n 1)))))"
      "(define (nth [s : (Rec s (Tuple Int (-> s)))] [k : Int]) : Int"
      "  (if (= k 0) (tuple-proj s 0) (nth ((tuple-proj s 1)) (- k 1))))"
      "(nth (count-from 10) 5)";
  EXPECT_EQ(expectModesAgree(Source), "15");
}

TEST_F(VMTest, StaticModeMatchesOnTypedPrograms) {
  const char *Typed = "(define (fact [n : Int]) : Int"
                      "  (if (= n 0) 1 (* n (fact (- n 1)))))"
                      "(fact 12)";
  RunResult S = runMode(Typed, CastMode::Static);
  RunResult C = runMode(Typed, CastMode::Coercions);
  ASSERT_TRUE(S.OK && C.OK);
  EXPECT_EQ(S.ResultText, C.ResultText);
  EXPECT_EQ(S.Stats.CastsApplied, 0u);
  EXPECT_EQ(C.Stats.CastsApplied, 0u); // fully typed: no casts either
}

TEST_F(VMTest, StaticModeRejectsGradualPrograms) {
  std::string Errors;
  auto Exe = G.compile("(lambda (x) x)", CastMode::Static, Errors);
  // Unannotated parameter means Dyn — static compilation must fail.
  EXPECT_FALSE(Exe.has_value());
}

//===----------------------------------------------------------------------===//
// The paper's space-efficiency behaviours
//===----------------------------------------------------------------------===//

namespace {

/// The even/odd CPS program of paper Figure 2, parameterized by n.
std::string evenOddProgram(int N) {
  return "(define even? : (Dyn (Dyn -> Bool) -> Bool)"
         "  (lambda ([n : Dyn] [k : (Dyn -> Bool)])"
         "    (if (= n 0) (k #t) (odd? (- n 1) k))))"
         "(define odd? : (Int (Bool -> Bool) -> Bool)"
         "  (lambda ([n : Int] [k : (Bool -> Bool)])"
         "    (if (= n 0) (k #f) (even? (- n 1) k))))"
         "(even? (ann " +
         std::to_string(N) +
         " Dyn) (lambda ([b : Dyn]) (ann b Bool)))";
}

/// even/odd via evenOddProgram but reading n from input so one
/// executable serves several sizes (heap peaks must be comparable).
std::string evenOddSpaceProgram() {
  return "(define even? : (Dyn (Dyn -> Bool) -> Bool)"
         "  (lambda ([n : Dyn] [k : (Dyn -> Bool)])"
         "    (if (= n 0) (k #t) (odd? (- n 1) k))))"
         "(define odd? : (Int (Bool -> Bool) -> Bool)"
         "  (lambda ([n : Int] [k : (Bool -> Bool)])"
         "    (if (= n 0) (k #f) (even? (- n 1) k))))"
         "(even? (ann (read-int) Dyn) (lambda ([b : Dyn]) (ann b Bool)))";
}

} // namespace

TEST_F(VMTest, EvenOddComputesCorrectly) {
  for (int N : {0, 1, 7, 100}) {
    RunResult C = runMode(evenOddProgram(N), CastMode::Coercions);
    RunResult T = runMode(evenOddProgram(N), CastMode::TypeBased);
    ASSERT_TRUE(C.OK) << C.Error.str();
    ASSERT_TRUE(T.OK) << T.Error.str();
    std::string Expected = N % 2 == 0 ? "#t" : "#f";
    EXPECT_EQ(C.ResultText, Expected);
    EXPECT_EQ(T.ResultText, Expected);
  }
}

TEST_F(VMTest, EvenOddProxyChainsDivergeByMode) {
  // The paper's Figure 4 (left): type-based casts accumulate proxies on
  // the continuation; coercions keep a single composed proxy.
  RunResult C = runMode(evenOddProgram(200), CastMode::Coercions);
  RunResult T = runMode(evenOddProgram(200), CastMode::TypeBased);
  ASSERT_TRUE(C.OK && T.OK);
  EXPECT_LE(C.Stats.LongestProxyChain, 1u);
  EXPECT_GE(T.Stats.LongestProxyChain, 100u);
}

TEST_F(VMTest, QuicksortPartialAnnotationChains) {
  // Figure 3: fully typed quicksort except the sort! vector parameter.
  const char *Source =
      "(define swap! : ((Vect Int) Int Int -> ())"
      "  (lambda ([v : (Vect Int)] [i : Int] [j : Int])"
      "    (let ([tmp : Int (vector-ref v i)])"
      "      (begin (vector-set! v i (vector-ref v j))"
      "             (vector-set! v j tmp)))))"
      "(define partition! : ((Vect Int) Int Int -> Int)"
      "  (lambda ([v : (Vect Int)] [l : Int] [h : Int])"
      "    (let ([p : Int (vector-ref v h)] [i : (Ref Int) (box (- l 1))])"
      "      (begin"
      "        (repeat (j l h)"
      "          (when (<= (vector-ref v j) p)"
      "            (box-set! i (+ (unbox i) 1))"
      "            (swap! v (unbox i) j)))"
      "        (swap! v (+ (unbox i) 1) h)"
      "        (+ (unbox i) 1)))))"
      "(define sort! : ((Vect Int) Int Int -> ())"
      "  (lambda ([v : (Vect Dyn)] [lo : Int] [hi : Int])"
      "    (when (< lo hi)"
      "      (let ([pivot : Int (partition! v lo hi)])"
      "        (begin (sort! v lo (- pivot 1))"
      "               (sort! v (+ pivot 1) hi))))))"
      "(define n : Int 64)"
      "(define v : (Vect Int) (make-vector n 0))"
      "(repeat (i 0 n) (vector-set! v i (- n i)))"
      "(sort! v 0 (- n 1))"
      "(repeat (i 0 n) (acc : Bool #t)"
      "  (if (= (vector-ref v i) (+ i 1)) acc #f))";
  RunResult C = runMode(Source, CastMode::Coercions);
  RunResult T = runMode(Source, CastMode::TypeBased);
  ASSERT_TRUE(C.OK) << C.Error.str();
  ASSERT_TRUE(T.OK) << T.Error.str();
  EXPECT_EQ(C.ResultText, "#t");
  EXPECT_EQ(T.ResultText, "#t");
  // Coercions: bounded proxies. Type-based: chains grow with recursion
  // depth (sorted input = worst case, depth ~ n).
  EXPECT_LE(C.Stats.LongestProxyChain, 1u);
  EXPECT_GE(T.Stats.LongestProxyChain, 30u);
}

TEST_F(VMTest, EvenOddSpaceBound) {
  // The paper's space-efficiency theorem, observed on the heap: doubling
  // n roughly doubles the type-based peak heap (a proxy per iteration
  // stays live through the continuation) while the coercion peak stays
  // flat (one composed proxy).
  std::string Errors;
  auto ExeC = G.compile(evenOddSpaceProgram(), CastMode::Coercions, Errors);
  auto ExeT = G.compile(evenOddSpaceProgram(), CastMode::TypeBased, Errors);
  ASSERT_TRUE(ExeC && ExeT) << Errors;
  // Sizes are chosen so the GC has cycled (the peak metric counts
  // garbage up to the collection threshold, so tiny runs just show the
  // threshold).
  RunResult C1 = ExeC->run("200000"), C2 = ExeC->run("400000");
  RunResult T1 = ExeT->run("200000"), T2 = ExeT->run("400000");
  ASSERT_TRUE(C1.OK && C2.OK && T1.OK && T2.OK);
  ASSERT_GT(C1.Stats.CastsApplied, 0u);
  // Type-based: the whole proxy chain is live — peak grows ~linearly.
  EXPECT_GT(T2.PeakHeapBytes, T1.PeakHeapBytes + 4000000u);
  // Coercions: constant live set — peak pinned near the GC threshold.
  EXPECT_LT(C2.PeakHeapBytes, C1.PeakHeapBytes * 3 / 2 + (1u << 16));
  // And the coercion peak is far below the type-based peak.
  EXPECT_LT(C2.PeakHeapBytes * 2, T2.PeakHeapBytes);
}

TEST_F(VMTest, GCSurvivesAllocationStorm) {
  // ~40M of garbage tuples; forces multiple collections (8MB threshold).
  const char *Source = "(repeat (i 0 300000) (acc : Int 0)"
                       "  (+ acc (tuple-proj (tuple i i i) 0)))";
  RunResult R = runMode(Source, CastMode::Coercions);
  ASSERT_TRUE(R.OK) << R.Error.str();
  EXPECT_EQ(R.ResultText, "44999850000");
}

TEST_F(VMTest, CastCountsAreTracked) {
  RunResult R = runMode("(repeat (i 0 100) (acc : Int 0)"
                        "  (+ acc (ann (ann i Dyn) Int)))",
                        CastMode::Coercions);
  ASSERT_TRUE(R.OK);
  EXPECT_GE(R.Stats.CastsApplied, 200u);
}

TEST_F(VMTest, UntypedProgramsRun) {
  // Fully dynamic code: every annotation omitted.
  EXPECT_EQ(expectModesAgree("(define (map2 f v)"
                             "  (begin"
                             "    (repeat (i 0 (vector-length v))"
                             "      (vector-set! v i (f (vector-ref v i))))"
                             "    v))"
                             "(define v (make-vector 4 (ann 3 Dyn)))"
                             "(vector-ref (map2 (lambda (x) (* x 2)) v) 3)"),
            "6");
}

//===----------------------------------------------------------------------===//
// Superinstruction fusion is a pure dispatch optimization. Over a corpus
// of generated programs, the fused and unfused compilations of the same
// AST must agree exactly — result, output, error, fuel, and every
// runtime counter — in every cast mode. Fuel equality is the sharp
// check: each fused op must charge one unit per component instruction,
// hitting the same cancel-poll boundaries as the unfused expansion.
//===----------------------------------------------------------------------===//

#include "fuzz/FuzzGen.h"
#include "support/RNG.h"

class FusionDifferential : public ::testing::TestWithParam<int> {};

TEST_P(FusionDifferential, FusedAndUnfusedAgreeExactly) {
  const unsigned Iters = fuzz::iterationCount(40);
  for (unsigned Iter = 0; Iter != Iters; ++Iter) {
    Grift G;
    RNG Gen(0xF5ED + GetParam() * 31337 + Iter);
    fuzz::ProgramGen PG(G.types(), Gen);
    std::string Source = PG.program();

    std::string Errors;
    auto Ast = G.parse(Source, Errors);
    ASSERT_TRUE(Ast.has_value()) << Errors << "\nprogram:\n" << Source;

    for (CastMode Mode :
         {CastMode::Coercions, CastMode::TypeBased, CastMode::Monotonic}) {
      auto Fused = G.compileAst(*Ast, Mode, Errors,
                                /*Optimize=*/false, /*Fuse=*/true);
      ASSERT_TRUE(Fused.has_value()) << Errors << "\nprogram:\n" << Source;
      auto Unfused = G.compileAst(*Ast, Mode, Errors,
                                  /*Optimize=*/false, /*Fuse=*/false);
      ASSERT_TRUE(Unfused.has_value()) << Errors << "\nprogram:\n" << Source;

      RunResult RF = Fused->run();
      RunResult RU = Unfused->run();
      EXPECT_EQ(RF.OK, RU.OK) << "program:\n" << Source;
      EXPECT_EQ(RF.ResultText, RU.ResultText) << "program:\n" << Source;
      EXPECT_EQ(RF.Output, RU.Output) << "program:\n" << Source;
      if (!RF.OK)
        EXPECT_EQ(RF.Error.str(), RU.Error.str()) << "program:\n" << Source;
      EXPECT_EQ(RF.Steps, RU.Steps) << "program:\n" << Source;
      EXPECT_EQ(RF.Stats.CastsApplied, RU.Stats.CastsApplied)
          << "program:\n" << Source;
      EXPECT_EQ(RF.Stats.Compositions, RU.Stats.Compositions)
          << "program:\n" << Source;
      EXPECT_EQ(RF.Stats.LongestProxyChain, RU.Stats.LongestProxyChain)
          << "program:\n" << Source;
      EXPECT_EQ(RF.Stats.ProxiesAllocated, RU.Stats.ProxiesAllocated)
          << "program:\n" << Source;
      EXPECT_EQ(RF.Stats.CacheHits, RU.Stats.CacheHits)
          << "program:\n" << Source;
      EXPECT_EQ(RF.Stats.CacheMisses, RU.Stats.CacheMisses)
          << "program:\n" << Source;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, FusionDifferential,
                         ::testing::Range(0, 6));
