//===----------------------------------------------------------------------===//
///
/// \file
/// Contract tests for the public API (grift::Grift, grift::Executable):
/// executables are reusable and deterministic across runs, many programs
/// share one compiler instance, and error reporting goes through the
/// documented channels (never exceptions).
///
//===----------------------------------------------------------------------===//
#include "frontend/Parser.h"
#include "grift/Grift.h"

#include <gtest/gtest.h>

using namespace grift;

TEST(Api, ExecutableIsReusableAndDeterministic) {
  Grift G;
  std::string Errors;
  auto Exe = G.compile("(define c : (Ref Int) (box 0))"
                       "(begin (box-set! c (+ (unbox c) 1)) (unbox c))",
                       CastMode::Coercions, Errors);
  ASSERT_TRUE(Exe.has_value()) << Errors;
  // Each run gets a fresh heap and fresh globals: no state leaks.
  for (int I = 0; I != 3; ++I) {
    RunResult R = Exe->run();
    ASSERT_TRUE(R.OK);
    EXPECT_EQ(R.ResultText, "1");
  }
}

TEST(Api, ManyExecutablesShareOneCompiler) {
  Grift G;
  std::string Errors;
  auto A = G.compile("(* 6 7)", CastMode::Coercions, Errors);
  auto B = G.compile("(ann (ann 5 Dyn) Int)", CastMode::TypeBased, Errors);
  auto C = G.compile("(+ 1 1)", CastMode::Static, Errors);
  ASSERT_TRUE(A && B && C) << Errors;
  // Interleaved runs; shared type/coercion contexts must not interfere.
  EXPECT_EQ(A->run().ResultText, "42");
  EXPECT_EQ(B->run().ResultText, "5");
  EXPECT_EQ(C->run().ResultText, "2");
  EXPECT_EQ(A->run().ResultText, "42");
}

TEST(Api, ErrorsAccumulateInTheOutParameter) {
  Grift G;
  std::string Errors;
  auto Bad = G.compile("(+ 1 #t)", CastMode::Coercions, Errors);
  EXPECT_FALSE(Bad.has_value());
  EXPECT_NE(Errors.find("error"), std::string::npos);
  // A later successful compile is unaffected by the sticky error string.
  auto Good = G.compile("(+ 1 2)", CastMode::Coercions, Errors);
  ASSERT_TRUE(Good.has_value());
  EXPECT_EQ(Good->run().ResultText, "3");
}

TEST(Api, RunNeverThrows) {
  Grift G;
  std::string Errors;
  auto Exe = G.compile("(/ 1 0)", CastMode::Coercions, Errors);
  ASSERT_TRUE(Exe.has_value()) << Errors;
  EXPECT_NO_THROW({
    RunResult R = Exe->run();
    EXPECT_FALSE(R.OK);
  });
}

TEST(Api, InputIsPerRun) {
  Grift G;
  std::string Errors;
  auto Exe = G.compile("(+ (read-int) 1)", CastMode::Coercions, Errors);
  ASSERT_TRUE(Exe.has_value()) << Errors;
  EXPECT_EQ(Exe->run("41").ResultText, "42");
  EXPECT_EQ(Exe->run("1").ResultText, "2");
}

TEST(Api, ParseExprHelper) {
  TypeContext Types;
  DiagnosticEngine Diags;
  ExprPtr E = parseExpr(Types, "(+ 1 2)", Diags);
  ASSERT_NE(E, nullptr) << Diags.str();
  EXPECT_EQ(E->Kind, ExprKind::PrimApp);
  EXPECT_EQ(parseExpr(Types, "(+ 1", Diags), nullptr);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(Api, ModeIsRecordedOnTheExecutable) {
  Grift G;
  std::string Errors;
  auto Exe = G.compile("1", CastMode::TypeBased, Errors);
  ASSERT_TRUE(Exe.has_value());
  EXPECT_EQ(Exe->mode(), CastMode::TypeBased);
}

TEST(Api, StatsSnapshotPerRun) {
  Grift G;
  std::string Errors;
  auto Exe = G.compile("(repeat (i 0 10) (acc : Int 0)"
                       "  (+ acc (ann (ann i Dyn) Int)))",
                       CastMode::Coercions, Errors);
  ASSERT_TRUE(Exe.has_value()) << Errors;
  RunResult First = Exe->run();
  RunResult Second = Exe->run();
  ASSERT_TRUE(First.OK && Second.OK);
  // Counters reset between runs (not cumulative).
  EXPECT_EQ(First.Stats.CastsApplied, Second.Stats.CastsApplied);
  EXPECT_GT(First.Stats.CastsApplied, 0u);
}
