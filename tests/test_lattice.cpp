//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the configuration machinery: type erasure (Dynamic Grift),
/// the binned fine-grained sampler, and the coarse per-define lattice.
///
//===----------------------------------------------------------------------===//
#include "grift/Grift.h"
#include "lattice/Lattice.h"

#include <gtest/gtest.h>

using namespace grift;

namespace {

const char *TypedProgram =
    "(define (add [x : Int] [y : Int]) : Int (+ x y))"
    "(define (twice [f : (Int -> Int)] [x : Int]) : Int (f (f x)))"
    "(define v : (Vect Int) (make-vector 4 1))"
    "(print-int (twice (lambda ([k : Int]) : Int (add k 2)) "
    "                  (vector-ref v 0)))";

class LatticeTest : public ::testing::Test {
protected:
  Grift G;

  Program parse(const char *Source) {
    std::string Errors;
    auto Ast = G.parse(Source, Errors);
    EXPECT_TRUE(Ast.has_value()) << Errors;
    return std::move(*Ast);
  }

  std::string runAst(const Program &Ast, CastMode Mode) {
    std::string Errors;
    auto Exe = G.compileAst(Ast, Mode, Errors);
    EXPECT_TRUE(Exe.has_value()) << Errors << "\nprogram:\n" << Ast.str();
    if (!Exe)
      return "<compile error>";
    RunResult R = Exe->run();
    EXPECT_TRUE(R.OK) << R.Error.str() << "\nprogram:\n" << Ast.str();
    return R.OK ? R.Output : "<run error>";
  }
};

} // namespace

TEST_F(LatticeTest, TypedProgramHasFullPrecision) {
  Program Ast = parse(TypedProgram);
  EXPECT_DOUBLE_EQ(programPrecision(Ast), 1.0);
}

TEST_F(LatticeTest, ErasedProgramHasZeroPrecision) {
  Program Ast = parse(TypedProgram);
  Program Erased = eraseTypes(Ast, G.types());
  EXPECT_DOUBLE_EQ(programPrecision(Erased), 0.0);
}

TEST_F(LatticeTest, ErasedProgramRunsIdentically) {
  Program Ast = parse(TypedProgram);
  Program Erased = eraseTypes(Ast, G.types());
  EXPECT_EQ(runAst(Ast, CastMode::Coercions), "5");
  EXPECT_EQ(runAst(Erased, CastMode::Coercions), "5");
  EXPECT_EQ(runAst(Erased, CastMode::TypeBased), "5");
}

TEST_F(LatticeTest, ErasureIsIdempotentOnPrecision) {
  Program Ast = parse(TypedProgram);
  Program Once = eraseTypes(Ast, G.types());
  Program Twice = eraseTypes(Once, G.types());
  EXPECT_DOUBLE_EQ(programPrecision(Twice), 0.0);
  EXPECT_EQ(runAst(Twice, CastMode::Coercions), "5");
}

TEST_F(LatticeTest, SamplerIsDeterministic) {
  Program Ast = parse(TypedProgram);
  auto A = sampleFineGrained(Ast, G.types(), 4, 2, 42);
  auto B = sampleFineGrained(Ast, G.types(), 4, 2, 42);
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I != A.size(); ++I) {
    EXPECT_EQ(A[I].Prog.str(), B[I].Prog.str());
    EXPECT_DOUBLE_EQ(A[I].Precision, B[I].Precision);
  }
}

TEST_F(LatticeTest, SamplerCoversBins) {
  Program Ast = parse(TypedProgram);
  auto Configs = sampleFineGrained(Ast, G.types(), 4, 3, 7);
  EXPECT_EQ(Configs.size(), 12u);
  // Precisions must spread: at least one below 0.4 and one above 0.6.
  bool Low = false, High = false;
  for (const Configuration &C : Configs) {
    EXPECT_GE(C.Precision, 0.0);
    EXPECT_LE(C.Precision, 1.0);
    Low |= C.Precision < 0.4;
    High |= C.Precision > 0.6;
  }
  EXPECT_TRUE(Low);
  EXPECT_TRUE(High);
}

TEST_F(LatticeTest, SampledConfigsTypeCheckAndAgree) {
  // The gradual guarantee, observed end-to-end: every sampled
  // configuration computes the same output.
  Program Ast = parse(TypedProgram);
  auto Configs = sampleFineGrained(Ast, G.types(), 3, 2, 99);
  for (const Configuration &C : Configs) {
    EXPECT_EQ(runAst(C.Prog, CastMode::Coercions), "5");
    EXPECT_EQ(runAst(C.Prog, CastMode::TypeBased), "5");
  }
}

TEST_F(LatticeTest, CoarseConfigsEnumerate) {
  Program Ast = parse(TypedProgram);
  // Three named defines -> 8 configurations.
  auto Configs = coarseConfigs(Ast, G.types(), 64, 1);
  EXPECT_EQ(Configs.size(), 8u);
  // First is fully typed, some are partial, one is fully erased.
  EXPECT_DOUBLE_EQ(Configs[0].Precision, 1.0);
  double Min = 1.0;
  for (const Configuration &C : Configs) {
    Min = std::min(Min, C.Precision);
    EXPECT_EQ(runAst(C.Prog, CastMode::Coercions), "5");
  }
  EXPECT_LT(Min, 0.5);
}

//===----------------------------------------------------------------------===//
// Degenerate inputs: the samplers are library API for harnesses like
// griftfuzz, so zero budgets and annotation-free programs must yield
// well-defined (empty or trivial) results instead of asserting.
//===----------------------------------------------------------------------===//

TEST_F(LatticeTest, ZeroBinsOrZeroPerBinYieldNoConfigs) {
  Program Ast = parse(TypedProgram);
  EXPECT_TRUE(sampleFineGrained(Ast, G.types(), 0, 2, 11).empty());
  EXPECT_TRUE(sampleFineGrained(Ast, G.types(), 4, 0, 11).empty());
  EXPECT_TRUE(sampleFineGrained(Ast, G.types(), 0, 0, 11).empty());
}

TEST_F(LatticeTest, ZeroMaxConfigsYieldsNoCoarseConfigs) {
  Program Ast = parse(TypedProgram);
  EXPECT_TRUE(coarseConfigs(Ast, G.types(), 0, 11).empty());
}

TEST_F(LatticeTest, MaxConfigsOfOneYieldsOnlyTheTypedTop) {
  // 3 named defines -> 8 possible configs; a budget of 1 must not
  // overshoot, and the one config kept is the fully typed original.
  Program Ast = parse(TypedProgram);
  auto Configs = coarseConfigs(Ast, G.types(), 1, 11);
  ASSERT_EQ(Configs.size(), 1u);
  EXPECT_DOUBLE_EQ(Configs[0].Precision, 1.0);
}

TEST_F(LatticeTest, SamplingAFullyDynamicProgramIsClosed) {
  // The bottom element has nothing left to erase: every sampled
  // configuration is (semantically) the program itself, precision 0.
  Program Ast = parse(TypedProgram);
  Program Erased = eraseTypes(Ast, G.types());
  auto Configs = sampleFineGrained(Erased, G.types(), 3, 2, 5);
  ASSERT_EQ(Configs.size(), 6u);
  for (const Configuration &C : Configs) {
    EXPECT_DOUBLE_EQ(C.Precision, 0.0);
    EXPECT_EQ(runAst(C.Prog, CastMode::Coercions), "5");
  }
}

TEST_F(LatticeTest, AnnotationFreeProgramSamplesTrivially) {
  // No annotation slots at all: precision is defined as 0 and sampling
  // must neither crash nor mutate the program.
  Program Ast = parse("(print-int (+ 1 2))");
  EXPECT_DOUBLE_EQ(programPrecision(Ast), 0.0);
  auto Fine = sampleFineGrained(Ast, G.types(), 2, 2, 3);
  ASSERT_EQ(Fine.size(), 4u);
  for (const Configuration &C : Fine)
    EXPECT_EQ(C.Prog.str(), Ast.str());
  auto Coarse = coarseConfigs(Ast, G.types(), 8, 3);
  ASSERT_EQ(Coarse.size(), 1u); // no named defines -> only the top
  EXPECT_EQ(Coarse[0].Prog.str(), Ast.str());
}

TEST_F(LatticeTest, CoarseConfigsAreDeterministicAcrossRuns) {
  std::string Source;
  for (int I = 0; I != 8; ++I)
    Source += "(define (f" + std::to_string(I) + " [x : Int]) : Int (+ x " +
              std::to_string(I) + "))";
  Source += "(print-int (f0 (f1 (f2 (f3 (f4 (f5 (f6 (f7 0)))))))))";
  Program Ast = parse(Source.c_str());
  auto A = coarseConfigs(Ast, G.types(), 10, 77);
  auto B = coarseConfigs(Ast, G.types(), 10, 77);
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I != A.size(); ++I) {
    EXPECT_EQ(A[I].Prog.str(), B[I].Prog.str());
    EXPECT_DOUBLE_EQ(A[I].Precision, B[I].Precision);
  }
}

TEST_F(LatticeTest, CoarseConfigsSampleWhenLarge) {
  // Build a program with 8 defines but cap configs at 10.
  std::string Source;
  for (int I = 0; I != 8; ++I)
    Source += "(define (f" + std::to_string(I) + " [x : Int]) : Int (+ x " +
              std::to_string(I) + "))";
  Source += "(print-int (f0 (f1 (f2 (f3 (f4 (f5 (f6 (f7 0)))))))))";
  Program Ast = parse(Source.c_str());
  auto Configs = coarseConfigs(Ast, G.types(), 10, 3);
  EXPECT_EQ(Configs.size(), 10u);
  for (const Configuration &C : Configs)
    EXPECT_EQ(runAst(C.Prog, CastMode::Coercions), "28");
}
