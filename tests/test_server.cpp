//===----------------------------------------------------------------------===//
///
/// \file
/// The multi-tenant server stack: admission control, per-tenant quotas,
/// the frame protocol, deadline propagation, drain-based shutdown — and
/// the overload acceptance scenario from the roadmap: at 2x saturation
/// the server sheds with structured Overloaded responses in bounded
/// time, and a drain finishes every in-flight request before exit.
///
//===----------------------------------------------------------------------===//
#include "service/Server.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace grift;
using namespace grift::service;
using namespace grift::service::protocol;

namespace {

const char *DivergentLoop = "(letrec ([loop (lambda () (loop))]) (loop))";

/// Blocking frame client against a loopback TCP server. Reads carry a
/// generous timeout so a server bug fails the test instead of hanging it.
class Client {
public:
  explicit Client(uint16_t Port) {
    Fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in Addr{};
    Addr.sin_family = AF_INET;
    Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    Addr.sin_port = htons(Port);
    if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof Addr) != 0) {
      ::close(Fd);
      Fd = -1;
      return;
    }
    timeval TV{30, 0};
    ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &TV, sizeof TV);
  }
  ~Client() {
    if (Fd >= 0)
      ::close(Fd);
  }
  Client(Client &&O) : Fd(O.Fd) { O.Fd = -1; }
  Client(const Client &) = delete;

  bool ok() const { return Fd >= 0; }

  bool send(const std::string &Payload) {
    std::string F = frame(Payload);
    return ::send(Fd, F.data(), F.size(), MSG_NOSIGNAL) ==
           static_cast<ssize_t>(F.size());
  }

  /// Sends raw bytes, bypassing framing (hostile-input tests).
  bool sendRaw(const std::string &Bytes) {
    return ::send(Fd, Bytes.data(), Bytes.size(), MSG_NOSIGNAL) ==
           static_cast<ssize_t>(Bytes.size());
  }

  /// Reads one frame; empty string on EOF/timeout/garbage.
  std::string recvFrame() {
    std::string Header;
    char C;
    while (Header.size() < 24) {
      if (::recv(Fd, &C, 1, 0) != 1)
        return "";
      if (C == '\n')
        break;
      if (C < '0' || C > '9')
        return "";
      Header.push_back(C);
    }
    if (Header.empty())
      return "";
    size_t Len = std::stoull(Header);
    std::string Payload(Len, '\0');
    size_t Got = 0;
    while (Got < Len) {
      ssize_t N = ::recv(Fd, Payload.data() + Got, Len - Got, 0);
      if (N <= 0)
        return "";
      Got += static_cast<size_t>(N);
    }
    return Payload;
  }

  /// send + recv in one step.
  std::string roundTrip(const std::string &Payload) {
    if (!send(Payload))
      return "";
    return recvFrame();
  }

private:
  int Fd = -1;
};

bool contains(const std::string &Haystack, const std::string &Needle) {
  return Haystack.find(Needle) != std::string::npos;
}

ServerConfig smallServer(unsigned Threads = 2) {
  ServerConfig C;
  C.TcpPort = 0; // ephemeral
  C.Exec.Threads = Threads;
  C.Exec.Retry.MaxRetries = 0;
  C.Exec.Breaker.FailureThreshold = 0; // tests control rejection reasons
  C.Exec.MaxQueueDepth = 4;
  return C;
}

} // namespace

//===----------------------------------------------------------------------===//
// Admission (unit)
//===----------------------------------------------------------------------===//

TEST(ServerAdmission, BoundsInflightRequestsAndBytes) {
  Admission A({.MaxInflight = 2, .MaxInflightBytes = 100});
  EXPECT_EQ(A.admit(40), Admission::Verdict::Admitted);
  EXPECT_EQ(A.admit(40), Admission::Verdict::Admitted);
  EXPECT_EQ(A.admit(1), Admission::Verdict::TooManyInflight);
  A.release(40);
  EXPECT_EQ(A.admit(70), Admission::Verdict::TooManyBytes);
  EXPECT_EQ(A.admit(60), Admission::Verdict::Admitted);

  Admission::Snapshot S = A.snapshot();
  EXPECT_EQ(S.Admitted, 3u);
  EXPECT_EQ(S.Sheds, 2u);
  EXPECT_EQ(S.ShedsInflight, 1u);
  EXPECT_EQ(S.ShedsBytes, 1u);
  EXPECT_EQ(S.Inflight, 2u);
  EXPECT_EQ(S.InflightBytes, 100u);
  EXPECT_EQ(S.PeakInflight, 2u);
  EXPECT_EQ(S.PeakInflightBytes, 100u);
}

TEST(ServerAdmission, TicketReleasesOnScopeExit) {
  Admission A({.MaxInflight = 1, .MaxInflightBytes = 0});
  {
    AdmissionTicket T(A, 10);
    ASSERT_TRUE(T.admitted());
    AdmissionTicket Blocked(A, 10);
    EXPECT_FALSE(Blocked.admitted());
    EXPECT_EQ(Blocked.verdict(), Admission::Verdict::TooManyInflight);
  }
  EXPECT_EQ(A.snapshot().Inflight, 0u);
  EXPECT_TRUE(AdmissionTicket(A, 10).admitted());
}

//===----------------------------------------------------------------------===//
// Tenant quotas (unit, injected clock)
//===----------------------------------------------------------------------===//

TEST(ServerQuota, RequestRateBucketRefillsDeterministically) {
  TenantQuotaConfig C;
  C.RequestsPerSec = 10;
  C.BurstRequests = 2;
  TenantQuota Q(C);
  auto T0 = TenantQuota::Clock::now();

  // Fresh tenant: the full burst, then refusal.
  EXPECT_EQ(Q.admit("a", 0, T0), TenantQuota::Verdict::Admitted);
  EXPECT_EQ(Q.admit("a", 0, T0), TenantQuota::Verdict::Admitted);
  EXPECT_EQ(Q.admit("a", 0, T0), TenantQuota::Verdict::RateLimited);
  // Tenants are independent.
  EXPECT_EQ(Q.admit("b", 0, T0), TenantQuota::Verdict::Admitted);
  // 100 ms at 10 rps = exactly one token back.
  auto T1 = T0 + std::chrono::milliseconds(100);
  EXPECT_EQ(Q.admit("a", 0, T1), TenantQuota::Verdict::Admitted);
  EXPECT_EQ(Q.admit("a", 0, T1), TenantQuota::Verdict::RateLimited);
  // Refill never exceeds the burst depth.
  auto T2 = T1 + std::chrono::hours(1);
  EXPECT_EQ(Q.admit("a", 0, T2), TenantQuota::Verdict::Admitted);
  EXPECT_EQ(Q.admit("a", 0, T2), TenantQuota::Verdict::Admitted);
  EXPECT_EQ(Q.admit("a", 0, T2), TenantQuota::Verdict::RateLimited);

  TenantQuota::Snapshot S = Q.snapshot();
  EXPECT_EQ(S.RateRejects, 3u);
  EXPECT_EQ(S.Tenants, 2u);
}

TEST(ServerQuota, FuelDebtIsPostChargedAndPaysBackOverTime) {
  TenantQuotaConfig C;
  C.FuelPerSec = 1000;
  C.FuelBurst = 1000;
  TenantQuota Q(C);
  auto T0 = TenantQuota::Clock::now();

  ASSERT_EQ(Q.admit("hot", 0, T0), TenantQuota::Verdict::Admitted);
  // The run burned 3x the bucket: the tenant goes into debt...
  Q.complete("hot", 0, 3000);
  EXPECT_EQ(Q.admit("hot", 0, T0), TenantQuota::Verdict::FuelExhausted);
  // ...and stays refused until the refill clears the debt (-2000 fuel
  // at 1000/s = 2 s to break even, plus a margin to go positive).
  auto T1 = T0 + std::chrono::milliseconds(1500);
  EXPECT_EQ(Q.admit("hot", 0, T1), TenantQuota::Verdict::FuelExhausted);
  auto T2 = T0 + std::chrono::milliseconds(2100);
  EXPECT_EQ(Q.admit("hot", 0, T2), TenantQuota::Verdict::Admitted);
  // Other tenants were never affected by "hot"'s debt.
  EXPECT_EQ(Q.admit("cold", 0, T0), TenantQuota::Verdict::Admitted);
  EXPECT_EQ(Q.snapshot().FuelRejects, 2u);
}

TEST(ServerQuota, PerTenantInflightCaps) {
  TenantQuotaConfig C;
  C.MaxInflight = 1;
  C.MaxInflightBytes = 100;
  TenantQuota Q(C);
  auto T0 = TenantQuota::Clock::now();
  ASSERT_EQ(Q.admit("t", 10, T0), TenantQuota::Verdict::Admitted);
  EXPECT_EQ(Q.admit("t", 10, T0), TenantQuota::Verdict::TooManyInflight);
  Q.complete("t", 10, 0);
  EXPECT_EQ(Q.admit("t", 200, T0), TenantQuota::Verdict::TooManyBytes);
  EXPECT_EQ(Q.admit("t", 90, T0), TenantQuota::Verdict::Admitted);
  EXPECT_STREQ(tenantVerdictName(TenantQuota::Verdict::RateLimited),
               "quota:rate");
}

//===----------------------------------------------------------------------===//
// Protocol (unit)
//===----------------------------------------------------------------------===//

TEST(ServerProtocol, ParsesJobAndStatsRequests) {
  Request Req;
  std::string Error;
  ASSERT_TRUE(parseRequest("{\"id\":\"j\",\"tenant\":\"acme\","
                           "\"source\":\"(+ 1 2)\",\"deadline_ms\":250}",
                           Req, Error))
      << Error;
  EXPECT_EQ(Req.Spec.Id, "j");
  EXPECT_EQ(Req.Spec.Tenant, "acme");
  EXPECT_EQ(Req.Spec.DeadlineNanos, 250 * 1000000ll);

  Request Stats;
  ASSERT_TRUE(parseRequest("{\"stats\": true}", Stats, Error)) << Error;
  EXPECT_TRUE(Stats.StatsRequest);
}

TEST(ServerProtocol, ParsesEveryRegisteredMode) {
  // The protocol accepts exactly the registered backend names — a mode
  // added to the registry (e.g. coercion-passing) is reachable over the
  // wire with no protocol change.
  for (CastMode Mode : AllCastModes) {
    Request Req;
    std::string Error;
    std::string Json = std::string("{\"source\":\"(+ 1 1)\",\"mode\":\"") +
                       castModeName(Mode) + "\"}";
    ASSERT_TRUE(parseRequest(Json, Req, Error)) << Json << ": " << Error;
    EXPECT_EQ(Req.Spec.Mode, Mode);
  }
}

TEST(ServerProtocol, RejectsHostileRequestsWithReasons) {
  Request Req;
  std::string Error;
  std::string Reason;
  EXPECT_FALSE(parseRequest("{\"source\":\"x\",\"mode\":\"bogus\"}", Req,
                            Error, &Reason));
  EXPECT_TRUE(contains(Error, "mode"));
  EXPECT_EQ(Reason, "unknown-mode");
  // Near-miss spellings of a real mode stay fail-closed: no trimming,
  // no case folding, no prefix matching.
  for (const char *Garbled :
       {"coercion-passing ", " coercion-passing", "Coercion-Passing",
        "coercion_passing", "coercionpassing", "coercion-pass"}) {
    Reason.clear();
    EXPECT_FALSE(parseRequest(std::string("{\"source\":\"x\",\"mode\":\"") +
                                  Garbled + "\"}",
                              Req, Error, &Reason))
        << Garbled;
    EXPECT_EQ(Reason, "unknown-mode") << Garbled;
  }
  EXPECT_FALSE(parseRequest("{\"id\":\"x\"}", Req, Error, &Reason));
  EXPECT_TRUE(contains(Error, "source"));
  EXPECT_EQ(Reason, "missing-source");
  EXPECT_FALSE(parseRequest("{\"surprise\": 1, \"source\": \"x\"}", Req,
                            Error, &Reason));
  EXPECT_TRUE(contains(Error, "surprise"));
  EXPECT_EQ(Reason, "unknown-key");
  EXPECT_FALSE(parseRequest("not json at all", Req, Error, &Reason));
  EXPECT_EQ(Reason, "malformed-json");
  // The bad-request record carries the reason as its own member.
  EXPECT_TRUE(contains(renderBadRequest("j1", "unknown mode 'bogus'",
                                        "unknown-mode"),
                       "\"reason\":\"unknown-mode\""));
}

TEST(ServerProtocol, FrameRoundTrip) {
  EXPECT_EQ(frame("abc"), "3\nabc");
  EXPECT_EQ(frame(""), "0\n");
  JobResult R = makeReject("j9", ErrorKind::Overloaded, "overloaded: queue");
  std::string Line = renderResult(R, "overloaded:queue");
  EXPECT_TRUE(contains(Line, "\"status\":\"rejected\""));
  EXPECT_TRUE(contains(Line, "\"error_kind\":\"overloaded\""));
  EXPECT_TRUE(contains(Line, "\"reason\":\"overloaded:queue\""));
}

//===----------------------------------------------------------------------===//
// Server end-to-end
//===----------------------------------------------------------------------===//

TEST(Server, ServesJobsOverTcpAndReportsStats) {
  ServerConfig Config = smallServer();
  Server Srv(Config);
  std::string Error;
  ASSERT_TRUE(Srv.start(Error)) << Error;
  ASSERT_NE(Srv.tcpPort(), 0);

  Client C(Srv.tcpPort());
  ASSERT_TRUE(C.ok());
  std::string R1 =
      C.roundTrip("{\"id\":\"a\",\"source\":\"(+ 40 2)\"}");
  EXPECT_TRUE(contains(R1, "\"id\":\"a\"")) << R1;
  EXPECT_TRUE(contains(R1, "\"status\":\"ok\"")) << R1;
  EXPECT_TRUE(contains(R1, "\"result\":\"42\"")) << R1;

  // Same connection serves many requests; a blame error is a result,
  // not a connection event.
  std::string R2 = C.roundTrip(
      "{\"id\":\"b\",\"source\":\"(ann (ann #t Dyn) Int)\"}");
  EXPECT_TRUE(contains(R2, "\"status\":\"failed\"")) << R2;
  EXPECT_TRUE(contains(R2, "\"error_kind\":\"blame\"")) << R2;

  std::string Stats = C.roundTrip("{\"stats\": true}");
  EXPECT_TRUE(contains(Stats, "\"status\":\"stats\"")) << Stats;
  EXPECT_TRUE(contains(Stats, "\"requests\":3")) << Stats;

  Srv.beginDrain();
  Srv.waitDrained();
  EXPECT_EQ(Srv.stats().Responses, 3u);
}

TEST(Server, MalformedJsonKeepsConnectionOversizedFrameCloses) {
  ServerConfig Config = smallServer();
  Config.MaxRequestBytes = 256;
  Server Srv(Config);
  std::string Error;
  ASSERT_TRUE(Srv.start(Error)) << Error;

  Client C(Srv.tcpPort());
  ASSERT_TRUE(C.ok());
  // Malformed JSON: structured bad-request, connection stays up.
  std::string R1 = C.roundTrip("this is not json");
  EXPECT_TRUE(contains(R1, "\"status\":\"bad-request\"")) << R1;
  // Unknown keys and nested values: same.
  std::string R2 = C.roundTrip("{\"source\":\"x\",\"extra\":[1,2]}");
  EXPECT_TRUE(contains(R2, "\"status\":\"bad-request\"")) << R2;
  // The connection still serves real work after the garbage.
  std::string R3 = C.roundTrip("{\"id\":\"ok\",\"source\":\"(* 6 7)\"}");
  EXPECT_TRUE(contains(R3, "\"result\":\"42\"")) << R3;

  // An oversized frame is refused from its header and the connection is
  // closed (stream position would be unknowable).
  ASSERT_TRUE(C.send(std::string(4096, 'x')));
  std::string R4 = C.recvFrame();
  EXPECT_TRUE(contains(R4, "max_request_bytes")) << R4;
  EXPECT_EQ(C.recvFrame(), "");

  // A hostile header (non-digits) also closes, after a structured error.
  Client C2(Srv.tcpPort());
  ASSERT_TRUE(C2.ok());
  ASSERT_TRUE(C2.sendRaw("deadbeef\n"));
  std::string R5 = C2.recvFrame();
  EXPECT_TRUE(contains(R5, "malformed")) << R5;
  EXPECT_EQ(C2.recvFrame(), "");

  Srv.beginDrain();
  Srv.waitDrained();
  EXPECT_GE(Srv.stats().BadRequests, 4u);
}

TEST(Server, DeadlinePropagationKillsWedgedRequest) {
  ServerConfig Config = smallServer();
  Server Srv(Config);
  std::string Error;
  ASSERT_TRUE(Srv.start(Error)) << Error;

  Client C(Srv.tcpPort());
  ASSERT_TRUE(C.ok());
  auto Start = std::chrono::steady_clock::now();
  std::string R = C.roundTrip(std::string("{\"id\":\"w\",\"source\":\"") +
                              DivergentLoop + "\",\"deadline_ms\":300}");
  auto Elapsed = std::chrono::steady_clock::now() - Start;
  EXPECT_TRUE(contains(R, "\"status\":\"failed\"")) << R;
  EXPECT_TRUE(contains(R, "cancelled") || contains(R, "timeout")) << R;
  EXPECT_LT(Elapsed, std::chrono::seconds(10));

  Srv.beginDrain();
  Srv.waitDrained();
}

TEST(Server, TenantQuotaShedsOverSocketWithReason) {
  ServerConfig Config = smallServer();
  Config.Quota.RequestsPerSec = 0.001; // effectively: the burst, then done
  Config.Quota.BurstRequests = 2;
  Server Srv(Config);
  std::string Error;
  ASSERT_TRUE(Srv.start(Error)) << Error;

  Client C(Srv.tcpPort());
  ASSERT_TRUE(C.ok());
  for (int I = 0; I != 2; ++I) {
    std::string R = C.roundTrip(
        "{\"tenant\":\"acme\",\"source\":\"(+ 1 1)\"}");
    EXPECT_TRUE(contains(R, "\"status\":\"ok\"")) << R;
  }
  std::string Shed =
      C.roundTrip("{\"tenant\":\"acme\",\"source\":\"(+ 1 1)\"}");
  EXPECT_TRUE(contains(Shed, "\"status\":\"rejected\"")) << Shed;
  EXPECT_TRUE(contains(Shed, "\"error_kind\":\"overloaded\"")) << Shed;
  EXPECT_TRUE(contains(Shed, "\"reason\":\"quota:rate\"")) << Shed;
  // A different tenant on the same connection is unaffected.
  std::string Other =
      C.roundTrip("{\"tenant\":\"umbrella\",\"source\":\"(+ 2 2)\"}");
  EXPECT_TRUE(contains(Other, "\"status\":\"ok\"")) << Other;

  Srv.beginDrain();
  Srv.waitDrained();
  EXPECT_GE(Srv.stats().Quota.RateRejects, 1u);
}

/// The overload acceptance scenario: with the worker pool saturated at
/// 2x (every worker wedged on a watchdog-bounded job, the queue full,
/// admission at its limit), further requests are shed with structured
/// Overloaded responses within a bounded time — and a drain then
/// finishes every in-flight job and delivers every response.
TEST(Server, OverloadAtTwiceSaturationShedsStructurallyAndDrainsClean) {
  ServerConfig Config = smallServer(/*Threads=*/2);
  Config.Exec.MaxQueueDepth = 2;
  Config.Admission.MaxInflight = 4; // threads + queue
  Server Srv(Config);
  std::string Error;
  ASSERT_TRUE(Srv.start(Error)) << Error;

  // 2x saturation: 8 concurrent wedged requests against 4 slots.
  constexpr int N = 8;
  std::vector<std::thread> Threads;
  std::vector<std::string> Responses(N);
  auto Start = std::chrono::steady_clock::now();
  for (int I = 0; I != N; ++I)
    Threads.emplace_back([&, I] {
      Client C(Srv.tcpPort());
      if (!C.ok())
        return;
      // Distinct ids; the shared source is fine (breaker disabled).
      Responses[I] = C.roundTrip(
          std::string("{\"id\":\"ov-") + std::to_string(I) +
          "\",\"source\":\"" + DivergentLoop + "\",\"deadline_ms\":600}");
    });
  for (std::thread &T : Threads)
    T.join();
  auto Elapsed = std::chrono::steady_clock::now() - Start;

  int Ran = 0, Shed = 0;
  for (const std::string &R : Responses) {
    ASSERT_FALSE(R.empty()) << "a client got no response under overload";
    if (contains(R, "\"status\":\"rejected\"")) {
      ++Shed;
      EXPECT_TRUE(contains(R, "\"error_kind\":\"overloaded\"")) << R;
      EXPECT_TRUE(contains(R, "\"reason\":\"overloaded:")) << R;
    } else {
      ++Ran;
      EXPECT_TRUE(contains(R, "cancelled") || contains(R, "timeout")) << R;
    }
  }
  // At least the beyond-capacity half was shed; every shed was fast
  // (the slowest admitted job holds a slot for ~600 ms + margin).
  EXPECT_GE(Shed, N / 2) << "overload did not shed";
  EXPECT_GE(Ran, 1) << "everything was shed; nothing admitted";
  EXPECT_LT(Elapsed, std::chrono::seconds(30));

  // Drain with the pool still warm: in-flight work finishes, stats add
  // up, and the listener refuses new connections afterwards.
  Srv.beginDrain();
  Srv.waitDrained();
  ServerStats S = Srv.stats();
  EXPECT_EQ(S.Requests, static_cast<uint64_t>(N));
  EXPECT_EQ(S.Responses, static_cast<uint64_t>(N));
  EXPECT_GE(S.shedTotal(), static_cast<uint64_t>(Shed));
  EXPECT_EQ(S.SlowClientDrops, 0u);
}

TEST(Server, DrainFinishesInflightWorkBeforeExit) {
  ServerConfig Config = smallServer();
  Server Srv(Config);
  std::string Error;
  ASSERT_TRUE(Srv.start(Error)) << Error;

  Client C(Srv.tcpPort());
  ASSERT_TRUE(C.ok());
  // A request that takes ~400 ms (wedged + watchdog): start it, then
  // immediately drain. The response must still arrive, complete.
  ASSERT_TRUE(C.send(std::string("{\"id\":\"inflight\",\"source\":\"") +
                     DivergentLoop + "\",\"deadline_ms\":400}"));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  Srv.beginDrain();
  std::string R = C.recvFrame();
  EXPECT_TRUE(contains(R, "\"id\":\"inflight\"")) << R;
  EXPECT_TRUE(contains(R, "\"status\":\"failed\"")) << R;
  Srv.waitDrained();
  EXPECT_EQ(Srv.stats().Responses, 1u);

  // After the drain the listener is gone.
  Client C2(Srv.tcpPort());
  EXPECT_TRUE(!C2.ok() || C2.roundTrip("{\"stats\":true}") == "");
}

TEST(Server, UnixSocketModeWorks) {
  ServerConfig Config = smallServer();
  Config.UnixSocketPath = "/tmp/griftd-test-" + std::to_string(::getpid()) +
                          ".sock";
  Server Srv(Config);
  std::string Error;
  ASSERT_TRUE(Srv.start(Error)) << Error;

  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(Fd, 0);
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  std::strncpy(Addr.sun_path, Config.UnixSocketPath.c_str(),
               sizeof Addr.sun_path - 1);
  ASSERT_EQ(::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof Addr),
            0);
  std::string F = frame("{\"id\":\"u\",\"source\":\"(+ 1 1)\"}");
  ASSERT_EQ(::send(Fd, F.data(), F.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(F.size()));
  char Buf[4096];
  ssize_t N = ::recv(Fd, Buf, sizeof Buf, 0);
  ASSERT_GT(N, 0);
  EXPECT_TRUE(contains(std::string(Buf, static_cast<size_t>(N)),
                       "\"result\":\"2\""));
  ::close(Fd);

  Srv.beginDrain();
  Srv.waitDrained();
  // The socket path was unlinked on shutdown.
  EXPECT_NE(::access(Config.UnixSocketPath.c_str(), F_OK), 0);
}
