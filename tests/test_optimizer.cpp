//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the optional core-IR optimizer: individual folds, fixpoint
/// behaviour, semantic preservation on the benchmark suite, and the cast
/// reduction it buys on dynamic code.
///
//===----------------------------------------------------------------------===//
#include "bench_programs/Benchmarks.h"
#include "frontend/Optimizer.h"
#include "grift/Grift.h"
#include "lattice/Lattice.h"

#include <gtest/gtest.h>

using namespace grift;

namespace {

class OptimizerTest : public ::testing::Test {
protected:
  Grift G;

  core::CoreProgram checked(std::string_view Source) {
    std::string Errors;
    auto Ast = G.parse(Source, Errors);
    EXPECT_TRUE(Ast.has_value()) << Errors;
    auto Core = G.check(*Ast, Errors);
    EXPECT_TRUE(Core.has_value()) << Errors;
    return std::move(*Core);
  }

  std::string optimizedStr(std::string_view Source) {
    core::CoreProgram Core = checked(Source);
    while (optimizeCore(G.types(), Core) != 0) {
    }
    return Core.str();
  }
};

} // namespace

TEST_F(OptimizerTest, FoldsIntegerArithmetic) {
  EXPECT_EQ(optimizedStr("(+ 1 (* 2 3))"), "7\n");
  EXPECT_EQ(optimizedStr("(- 1 2)"), "-1\n");
  EXPECT_EQ(optimizedStr("(< 1 2)"), "#t\n");
  EXPECT_EQ(optimizedStr("(/ 10 2)"), "5\n");
}

TEST_F(OptimizerTest, NeverFoldsDivisionByZero) {
  // The runtime trap must be preserved.
  std::string Out = optimizedStr("(/ 10 0)");
  EXPECT_NE(Out.find("/"), std::string::npos);
  std::string Errors;
  auto Exe = G.compile("(/ 10 0)", CastMode::Coercions, Errors, true);
  ASSERT_TRUE(Exe.has_value());
  EXPECT_FALSE(Exe->run().OK);
}

TEST_F(OptimizerTest, FoldsBranches) {
  EXPECT_EQ(optimizedStr("(if (< 1 2) 10 20)"), "10\n");
  EXPECT_EQ(optimizedStr("(if (not #t) 10 20)"), "20\n");
}

TEST_F(OptimizerTest, FlattensBegins) {
  // Inner literals in statement position disappear.
  EXPECT_EQ(optimizedStr("(begin 1 (begin 2 3) 4)"), "4\n");
}

TEST_F(OptimizerTest, DropsAtomicLiteralInjections) {
  // (ann 5 Dyn) — the injection is a representation identity.
  core::CoreProgram Core = checked("(ann 5 Dyn)");
  EXPECT_EQ(core::countCasts(Core), 1u);
  while (optimizeCore(G.types(), Core) != 0) {
  }
  EXPECT_EQ(core::countCasts(Core), 0u);
}

TEST_F(OptimizerTest, KeepsStructuredInjections) {
  core::CoreProgram Core = checked("(ann (tuple 1 2) Dyn)");
  while (optimizeCore(G.types(), Core) != 0) {
  }
  EXPECT_EQ(core::countCasts(Core), 1u); // tuples need the DynBox
}

TEST_F(OptimizerTest, ReachesFixpoint) {
  core::CoreProgram Core = checked("(if (< 1 2) (+ 1 (+ 2 3)) 0)");
  unsigned Total = 0;
  for (int I = 0; I != 10; ++I) {
    unsigned N = optimizeCore(G.types(), Core);
    Total += N;
    if (N == 0)
      break;
  }
  EXPECT_GT(Total, 0u);
  EXPECT_EQ(optimizeCore(G.types(), Core), 0u); // idempotent at fixpoint
}

TEST_F(OptimizerTest, PreservesBenchmarkSemantics) {
  // Every benchmark, typed and erased, optimized vs. not: same output.
  for (const BenchProgram &B : allBenchmarks()) {
    Grift Fresh;
    std::string Errors;
    auto Ast = Fresh.parse(B.Source, Errors);
    ASSERT_TRUE(Ast.has_value()) << Errors;
    for (bool Erase : {false, true}) {
      Program Prog = Erase ? eraseTypes(*Ast, Fresh.types()) : Ast->clone();
      auto Plain =
          Fresh.compileAst(Prog, CastMode::Coercions, Errors, false);
      auto Opt = Fresh.compileAst(Prog, CastMode::Coercions, Errors, true);
      ASSERT_TRUE(Plain && Opt) << Errors;
      RunResult RPlain = Plain->run(B.TestInput);
      RunResult ROpt = Opt->run(B.TestInput);
      ASSERT_TRUE(RPlain.OK && ROpt.OK) << B.Name;
      EXPECT_EQ(RPlain.Output, ROpt.Output) << B.Name;
      // Optimization never increases the runtime cast count.
      EXPECT_LE(ROpt.Stats.CastsApplied, RPlain.Stats.CastsApplied)
          << B.Name;
    }
  }
}

TEST_F(OptimizerTest, ReducesCastsInDynamicCode) {
  // The paper's Section 5 conjecture, in miniature: on erased code the
  // literal-injection fold removes first-order checks.
  std::string Errors;
  auto Ast = G.parse(getBenchmark("tak").Source, Errors);
  ASSERT_TRUE(Ast.has_value()) << Errors;
  Program Erased = eraseTypes(*Ast, G.types());
  auto Plain = G.compileAst(Erased, CastMode::Coercions, Errors, false);
  auto Opt = G.compileAst(Erased, CastMode::Coercions, Errors, true);
  ASSERT_TRUE(Plain && Opt) << Errors;
  RunResult RPlain = Plain->run("14 10 4");
  RunResult ROpt = Opt->run("14 10 4");
  ASSERT_TRUE(RPlain.OK && ROpt.OK);
  EXPECT_EQ(RPlain.Output, ROpt.Output);
  EXPECT_LT(ROpt.Stats.CastsApplied, RPlain.Stats.CastsApplied);
}
