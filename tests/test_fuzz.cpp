//===----------------------------------------------------------------------===//
///
/// \file
/// Differential fuzzing: a type-directed generator produces random
/// well-typed gradual programs (casts only along precision ladders, so
/// every run succeeds), which must then agree — result text and output —
/// across the reference interpreter and the VM in every cast mode.
/// Programs are generated as *source text* so the reader, parser, and
/// checker are fuzzed along with the back ends.
///
/// Iteration counts honour GRIFT_FUZZ_ITERS; every failure message
/// carries the generator seed and the full program so it can be replayed
/// standalone.
///
//===----------------------------------------------------------------------===//
#include "fuzz/FuzzGen.h"
#include "grift/Grift.h"
#include "refinterp/RefInterp.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

using namespace grift;
using grift::fuzz::ProgramGen;

namespace {

struct EngineResult {
  bool OK = false;
  std::string Text; // result + output, or the error
};

/// Replay context appended to every assertion: seed first, so a failing
/// run can be reproduced without scraping the program text.
std::string replay(uint64_t Seed, const std::string &Source) {
  return "\nseed: " + std::to_string(Seed) + "\nprogram:\n" + Source;
}

} // namespace

class FuzzDifferential : public ::testing::TestWithParam<int> {};

TEST_P(FuzzDifferential, AllEnginesAgree) {
  const unsigned Iters = fuzz::iterationCount(60);
  for (unsigned Iter = 0; Iter != Iters; ++Iter) {
    Grift G;
    const uint64_t Seed = 0xF0220 + GetParam() * 10007 + Iter;
    RNG Gen(Seed);
    ProgramGen PG(G.types(), Gen);
    std::string Source = PG.program();
    const std::string Ctx = replay(Seed, Source);

    std::string Errors;
    auto Ast = G.parse(Source, Errors);
    ASSERT_TRUE(Ast.has_value()) << Errors << Ctx;
    auto Core = G.check(*Ast, Errors);
    ASSERT_TRUE(Core.has_value()) << Errors << Ctx;

    auto runVM = [&](CastMode Mode, bool Optimize = false) -> EngineResult {
      auto Exe = G.compileAst(*Ast, Mode, Errors, Optimize);
      EXPECT_TRUE(Exe.has_value()) << Errors << Ctx;
      if (!Exe)
        return {};
      RunResult R = Exe->run();
      if (!R.OK)
        return {false, R.Error.str()};
      return {true, R.ResultText + "|" + R.Output};
    };

    refinterp::RefResult Ref =
        refinterp::interpret(G.types(), G.coercions(), *Core);
    EngineResult RefR{Ref.OK, Ref.OK ? Ref.ResultText + "|" + Ref.Output
                                     : Ref.Message};
    // Generated programs only cast along precision ladders: the
    // reference interpreter and every gradual backend in the registry
    // must succeed and agree exactly.
    EXPECT_TRUE(RefR.OK) << RefR.Text << Ctx;
    for (CastMode Mode : GradualCastModes) {
      EngineResult R = runVM(Mode);
      EXPECT_TRUE(R.OK) << castModeName(Mode) << ": " << R.Text << Ctx;
      EXPECT_EQ(R.Text, RefR.Text) << castModeName(Mode) << Ctx;
    }
    EngineResult Optimized = runVM(CastMode::Coercions, /*Optimize=*/true);
    EXPECT_TRUE(Optimized.OK) << Optimized.Text << Ctx;
    EXPECT_EQ(Optimized.Text, RefR.Text) << Ctx;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, FuzzDifferential,
                         ::testing::Range(0, 8));

//===----------------------------------------------------------------------===//
// Float-biased differential fuzzing: the same N-way agreement check,
// but with the generator skewed toward Float expressions seeded with
// IEEE edge values (signed zeros, exponent extremes, fl/-produced NaN
// and infinities). Every double bit pattern must survive the NaN-boxed
// representation — arithmetic, comparisons, Dyn round trips, printing —
// identically in the reference interpreter and the VM.
//===----------------------------------------------------------------------===//

class FuzzFloatDifferential : public ::testing::TestWithParam<int> {};

TEST_P(FuzzFloatDifferential, AllEnginesAgreeOnFloatPrograms) {
  const unsigned Iters = fuzz::iterationCount(60);
  for (unsigned Iter = 0; Iter != Iters; ++Iter) {
    Grift G;
    const uint64_t Seed = 0xF10A7 + GetParam() * 10007 + Iter;
    RNG Gen(Seed);
    ProgramGen PG(G.types(), Gen, /*FloatBias=*/true);
    std::string Source = PG.program();
    const std::string Ctx = replay(Seed, Source);

    std::string Errors;
    auto Ast = G.parse(Source, Errors);
    ASSERT_TRUE(Ast.has_value()) << Errors << Ctx;
    auto Core = G.check(*Ast, Errors);
    ASSERT_TRUE(Core.has_value()) << Errors << Ctx;

    auto runVM = [&](CastMode Mode, bool Optimize = false) -> EngineResult {
      auto Exe = G.compileAst(*Ast, Mode, Errors, Optimize);
      EXPECT_TRUE(Exe.has_value()) << Errors << Ctx;
      if (!Exe)
        return {};
      RunResult R = Exe->run();
      if (!R.OK)
        return {false, R.Error.str()};
      return {true, R.ResultText + "|" + R.Output};
    };

    refinterp::RefResult Ref =
        refinterp::interpret(G.types(), G.coercions(), *Core);
    EngineResult RefR{Ref.OK, Ref.OK ? Ref.ResultText + "|" + Ref.Output
                                     : Ref.Message};
    EXPECT_TRUE(RefR.OK) << RefR.Text << Ctx;
    for (CastMode Mode : GradualCastModes) {
      EngineResult R = runVM(Mode);
      EXPECT_TRUE(R.OK) << castModeName(Mode) << ": " << R.Text << Ctx;
      EXPECT_EQ(R.Text, RefR.Text) << castModeName(Mode) << Ctx;
    }
    EngineResult Optimized = runVM(CastMode::Coercions, /*Optimize=*/true);
    EXPECT_TRUE(Optimized.OK) << Optimized.Text << Ctx;
    EXPECT_EQ(Optimized.Text, RefR.Text) << Ctx;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, FuzzFloatDifferential,
                         ::testing::Range(0, 8));

//===----------------------------------------------------------------------===//
// Differential execution under resource budgets: 8 seeds x 70 iterations
// = 560 generated programs, each run on the coercions VM, the type-based
// VM, and the reference interpreter with finite limits. Either every
// engine completes and agrees exactly, or every engine fails with the
// same ErrorKind — a budget must never change a program's meaning, and
// exhaustion must never crash.
//===----------------------------------------------------------------------===//

namespace {

struct Outcome {
  bool OK = false;
  std::string Text;
  ErrorKind Kind = ErrorKind::Trap;
};

} // namespace

class FuzzLimited : public ::testing::TestWithParam<int> {};

TEST_P(FuzzLimited, EnginesAgreeUnderResourceBudgets) {
  RunLimits Limits;
  Limits.MaxSteps = 2000000; // generous: generated programs are small
  Limits.MaxFrames = 5000;   // inside the refinterp's native-stack cap
  Limits.MaxHeapBytes = 256u << 20;

  const unsigned Iters = fuzz::iterationCount(70);
  for (unsigned Iter = 0; Iter != Iters; ++Iter) {
    Grift G;
    const uint64_t Seed = 0xB0D9E7 + GetParam() * 7919 + Iter;
    RNG Gen(Seed);
    ProgramGen PG(G.types(), Gen);
    std::string Source = PG.program();
    const std::string Ctx = replay(Seed, Source);

    std::string Errors;
    auto Ast = G.parse(Source, Errors);
    ASSERT_TRUE(Ast.has_value()) << Errors << Ctx;
    auto Core = G.check(*Ast, Errors);
    ASSERT_TRUE(Core.has_value()) << Errors << Ctx;

    auto runVM = [&](CastMode Mode) -> Outcome {
      auto Exe = G.compileAst(*Ast, Mode, Errors);
      EXPECT_TRUE(Exe.has_value()) << Errors << Ctx;
      if (!Exe)
        return {};
      RunResult R = Exe->run("", Limits);
      if (!R.OK)
        return {false, R.Error.str(), R.Error.Kind};
      return {true, R.ResultText + "|" + R.Output, ErrorKind::Trap};
    };

    refinterp::RefResult Ref =
        refinterp::interpret(G.types(), G.coercions(), *Core, "", Limits);
    Outcome RefR{Ref.OK, Ref.OK ? Ref.ResultText + "|" + Ref.Output
                                : Ref.Message,
                 Ref.Kind};
    Outcome Coerce = runVM(CastMode::Coercions);
    Outcome TB = runVM(CastMode::TypeBased);

    if (RefR.OK && Coerce.OK && TB.OK) {
      EXPECT_EQ(Coerce.Text, RefR.Text) << Ctx;
      EXPECT_EQ(Coerce.Text, TB.Text) << Ctx;
    } else {
      // Budgets are far above what any generated program needs, so a
      // failure must be unanimous and of one kind to be believable.
      EXPECT_FALSE(RefR.OK) << RefR.Text << Ctx;
      EXPECT_FALSE(Coerce.OK) << Coerce.Text << Ctx;
      EXPECT_FALSE(TB.OK) << TB.Text << Ctx;
      EXPECT_EQ(Coerce.Kind, RefR.Kind)
          << Coerce.Text << " vs " << RefR.Text << Ctx;
      EXPECT_EQ(Coerce.Kind, TB.Kind)
          << Coerce.Text << " vs " << TB.Text << Ctx;
    }
  }
}

TEST_P(FuzzLimited, TinyFuelFailsGracefullyAndEngineStaysUsable) {
  // Starve every engine: each run either completes inside the budget or
  // reports resource exhaustion — never a trap, blame, or crash. The
  // same executable must then complete untouched with the budget lifted.
  RunLimits Tiny;
  Tiny.MaxSteps = 100;
  Tiny.MaxFrames = 16;

  const unsigned Iters = fuzz::iterationCount(20);
  for (unsigned Iter = 0; Iter != Iters; ++Iter) {
    Grift G;
    const uint64_t Seed = 0x7E4B1 + GetParam() * 104729 + Iter;
    RNG Gen(Seed);
    ProgramGen PG(G.types(), Gen);
    std::string Source = PG.program();
    const std::string Ctx = replay(Seed, Source);

    std::string Errors;
    auto Exe = G.compile(Source, CastMode::Coercions, Errors);
    ASSERT_TRUE(Exe.has_value()) << Errors << Ctx;

    RunResult Starved = Exe->run("", Tiny);
    if (!Starved.OK)
      EXPECT_TRUE(Starved.Error.isResourceExhaustion())
          << Starved.Error.str() << Ctx;

    RunResult Full = Exe->run();
    EXPECT_TRUE(Full.OK) << Full.Error.str() << Ctx;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, FuzzLimited, ::testing::Range(0, 8));
