//===----------------------------------------------------------------------===//
///
/// \file
/// Unit and property tests for coercion creation and space-efficient
/// composition (paper Figures 15 and 17). The semantic soundness property
/// apply(c ⨟ d, v) ≡ apply(d, apply(c, v)) is tested in test_runtime.cpp
/// where value application exists; here we check the structural laws.
///
//===----------------------------------------------------------------------===//
#include "coercions/CoercionFactory.h"
#include "sexp/Reader.h"
#include "support/RNG.h"
#include "types/TypeOps.h"
#include "types/TypeParser.h"

#include <gtest/gtest.h>

using namespace grift;

namespace {

class CoercionTest : public ::testing::Test {
protected:
  TypeContext Types;
  CoercionFactory F{Types};

  const Type *ty(std::string_view Text) {
    DiagnosticEngine Diags;
    auto Data = readSexps(Text, Diags);
    EXPECT_EQ(Data.size(), 1u) << Text;
    const Type *T = parseType(Types, Data[0], Diags);
    EXPECT_NE(T, nullptr) << Diags.str();
    return T;
  }

  const Coercion *mk(std::string_view S, std::string_view T,
                     std::string_view Label = "p") {
    return F.make(ty(S), ty(T), Label);
  }
};

} // namespace

TEST_F(CoercionTest, IdentityCases) {
  EXPECT_TRUE(mk("Int", "Int")->isId());
  EXPECT_TRUE(mk("Dyn", "Dyn")->isId());
  EXPECT_TRUE(mk("(Int -> Bool)", "(Int -> Bool)")->isId());
  EXPECT_TRUE(mk("(Rec s (Tuple Int (-> s)))", "(Rec s (Tuple Int (-> s)))")
                  ->isId());
}

TEST_F(CoercionTest, InjectionAndProjection) {
  const Coercion *Inj = mk("Int", "Dyn");
  ASSERT_TRUE(Inj->isInjectSeq());
  EXPECT_EQ(Inj->second()->type(), Types.integer());
  EXPECT_TRUE(Inj->first()->isId());

  const Coercion *Prj = mk("Dyn", "Int", "here");
  ASSERT_TRUE(Prj->isProjectSeq());
  EXPECT_EQ(Prj->first()->type(), Types.integer());
  EXPECT_EQ(Prj->first()->label(), "here");
  EXPECT_TRUE(Prj->second()->isId());
}

TEST_F(CoercionTest, LazyDInjectsNonGroundTypes) {
  // lazy-D: (Int -> Int) injects directly (it is not a ground type).
  const Coercion *Inj = mk("(Int -> Int)", "Dyn");
  ASSERT_TRUE(Inj->isInjectSeq());
  EXPECT_EQ(Inj->second()->type(), ty("(Int -> Int)"));
}

TEST_F(CoercionTest, InconsistentTypesFail) {
  EXPECT_TRUE(mk("Int", "Bool", "b1")->isFail());
  EXPECT_EQ(mk("Int", "Bool", "b1")->label(), "b1");
  EXPECT_TRUE(mk("Int", "Float")->isFail());
  EXPECT_TRUE(mk("(Int -> Int)", "(Int Int -> Int)")->isFail());
  EXPECT_TRUE(mk("(Ref Int)", "(Vect Int)")->isFail());
}

TEST_F(CoercionTest, FunctionCoercionIsContravariant) {
  const Coercion *C = mk("(Int -> Dyn)", "(Dyn -> Dyn)");
  ASSERT_EQ(C->kind(), CoercionKind::Fun);
  // Argument coercion converts Dyn (new domain) to Int (old domain).
  ASSERT_TRUE(C->arg(0)->isProjectSeq());
  EXPECT_EQ(C->arg(0)->first()->type(), Types.integer());
  EXPECT_TRUE(C->result()->isId());
}

TEST_F(CoercionTest, RefCoercionReadsAndWrites) {
  const Coercion *C = mk("(Ref Int)", "(Ref Dyn)");
  ASSERT_EQ(C->kind(), CoercionKind::RefC);
  // Read: Int (stored) => Dyn (observed) — injection.
  EXPECT_TRUE(C->readCoercion()->isInjectSeq());
  // Write: Dyn (incoming) => Int (stored) — projection.
  EXPECT_TRUE(C->writeCoercion()->isProjectSeq());
}

TEST_F(CoercionTest, TupleCoercion) {
  const Coercion *C = mk("(Tuple Int Dyn)", "(Tuple Dyn Int)");
  ASSERT_EQ(C->kind(), CoercionKind::TupleC);
  EXPECT_TRUE(C->element(0)->isInjectSeq());
  EXPECT_TRUE(C->element(1)->isProjectSeq());
}

TEST_F(CoercionTest, MakeIsInterned) {
  EXPECT_EQ(mk("Int", "Dyn", "x"), mk("Int", "Dyn", "x"));
  // Different blame labels on a projection are different coercions.
  EXPECT_NE(mk("Dyn", "Int", "x"), mk("Dyn", "Int", "y"));
  // ... but injections carry no label.
  EXPECT_EQ(mk("Int", "Dyn", "x"), mk("Int", "Dyn", "y"));
}

TEST_F(CoercionTest, RecursiveCoercionTiesKnot) {
  const Coercion *C = mk("(Rec s (Tuple Int (-> s)))",
                         "(Rec s (Tuple Dyn (-> s)))");
  // The coercion is a μ whose body converts the head and, recursively,
  // the tail thunk.
  ASSERT_EQ(C->kind(), CoercionKind::Rec);
  const Coercion *Body = C->body();
  ASSERT_EQ(Body->kind(), CoercionKind::TupleC);
  EXPECT_TRUE(Body->element(0)->isInjectSeq());
  const Coercion *Tail = Body->element(1);
  ASSERT_EQ(Tail->kind(), CoercionKind::Fun);
  EXPECT_EQ(Tail->result(), C) << "back edge must point at the μ node";
}

TEST_F(CoercionTest, RecursiveVsUnfoldingIsIdentity) {
  const Type *S = ty("(Rec s (Tuple Int (-> s)))");
  const Type *U = Types.unfold(S);
  // μX.T and its unfolding are different interned types but the coercion
  // between them does no work.
  ASSERT_NE(S, U);
  const Coercion *C = F.make(S, U, "p");
  EXPECT_TRUE(C->isId());
}

TEST_F(CoercionTest, ComposeIdentityLaws) {
  const Coercion *C = mk("Int", "Dyn");
  EXPECT_EQ(F.compose(F.id(), C), C);
  EXPECT_EQ(F.compose(C, F.id()), C);
  EXPECT_TRUE(F.compose(F.id(), F.id())->isId());
}

TEST_F(CoercionTest, ComposeFailAbsorbs) {
  const Coercion *Fail = F.fail("boom");
  const Coercion *C = mk("Int", "Dyn");
  EXPECT_EQ(F.compose(Fail, C), Fail);
  // Failure on the right is deferred past injections but absorbs middles.
  const Coercion *FunC = mk("(Int -> Int)", "(Dyn -> Dyn)");
  EXPECT_EQ(F.compose(FunC, Fail), Fail);
}

TEST_F(CoercionTest, InjectionMeetsProjectionCancels) {
  // (ι ; Int!) ⨟ (Int?ᵖ ; ι) = ι — the space-efficiency linchpin.
  const Coercion *Up = mk("Int", "Dyn");
  const Coercion *Down = mk("Dyn", "Int");
  EXPECT_TRUE(F.compose(Up, Down)->isId());
}

TEST_F(CoercionTest, InjectionMeetsWrongProjectionFails) {
  const Coercion *Up = mk("Int", "Dyn");
  const Coercion *Down = mk("Dyn", "Bool", "blame-me");
  const Coercion *C = F.compose(Up, Down);
  ASSERT_TRUE(C->isFail());
  EXPECT_EQ(C->label(), "blame-me");
}

TEST_F(CoercionTest, ThreeCoercionBound) {
  // A classic even/odd-style alternating chain stays bounded: composing
  // (Dyn->Bool => Bool->Bool) with (Bool->Bool => Dyn->Bool) repeatedly
  // must not grow.
  const Coercion *A = mk("(Dyn -> Bool)", "(Bool -> Bool)");
  const Coercion *B = mk("(Bool -> Bool)", "(Dyn -> Bool)");
  const Coercion *Acc = A;
  unsigned MaxSize = 0;
  for (int I = 0; I != 50; ++I) {
    Acc = F.compose(Acc, I % 2 == 0 ? B : A);
    MaxSize = std::max(MaxSize, Acc->size());
    ASSERT_TRUE(CoercionFactory::isNormalForm(Acc));
  }
  // Height-2 types: the bound 5(2^2 - 1) = 15 nodes.
  EXPECT_LE(MaxSize, 15u);
}

TEST_F(CoercionTest, ProxyChainCompressionOnRefs) {
  // Alternating (Ref Int)/(Ref Dyn) casts — quicksort's pattern.
  const Coercion *A = mk("(Ref Int)", "(Ref Dyn)");
  const Coercion *B = mk("(Ref Dyn)", "(Ref Int)");
  const Coercion *Acc = A;
  for (int I = 0; I != 64; ++I) {
    Acc = F.compose(Acc, I % 2 == 0 ? B : A);
    ASSERT_LE(Acc->size(), 15u);
  }
}

TEST_F(CoercionTest, RecursiveCompositionStaysBounded) {
  // The sieve pattern at the coercion level: bouncing a stream between
  // its typed and partially-Dyn views must not grow the coercion.
  const Coercion *Up = mk("(Rec s (Tuple Int (-> s)))",
                          "(Rec s (Tuple Dyn (-> s)))");
  const Coercion *Down = mk("(Rec s (Tuple Dyn (-> s)))",
                            "(Rec s (Tuple Int (-> s)))");
  const Coercion *Acc = Up;
  unsigned MaxSize = 0;
  for (int I = 0; I != 40; ++I) {
    Acc = F.compose(Acc, I % 2 == 0 ? Down : Up);
    MaxSize = std::max(MaxSize, Acc->size());
    ASSERT_TRUE(CoercionFactory::isNormalForm(Acc)) << Acc->str();
  }
  EXPECT_LE(MaxSize, 32u) << "recursive composition grew unboundedly";
}

TEST_F(CoercionTest, RecursiveRoundTripCollapsesToIdentity) {
  // μ-coercion up followed by down composes to ι on the nose (the
  // Figure 15 id_eqv/fvs machinery): projections meet injections inside
  // the recursive body and everything cancels.
  const Coercion *Up = mk("(Rec s (Tuple Int (-> s)))",
                          "(Rec s (Tuple Dyn (-> s)))");
  const Coercion *Down = mk("(Rec s (Tuple Dyn (-> s)))",
                            "(Rec s (Tuple Int (-> s)))");
  EXPECT_TRUE(F.compose(Up, Down)->isId())
      << F.compose(Up, Down)->str();
}

TEST_F(CoercionTest, MutuallyRecursiveTypesCompose) {
  // Two distinct recursive types whose bodies reference each other's
  // shape through double nesting.
  const char *A = "(Rec a (Tuple Int (Rec b (Tuple (-> a) (-> b) Int))))";
  const char *B = "(Rec a (Tuple Dyn (Rec b (Tuple (-> a) (-> b) Dyn))))";
  const Coercion *AB = mk(A, B);
  const Coercion *BA = mk(B, A);
  ASSERT_TRUE(CoercionFactory::isNormalForm(AB)) << AB->str();
  const Coercion *Round = F.compose(AB, BA);
  ASSERT_TRUE(CoercionFactory::isNormalForm(Round)) << Round->str();
  EXPECT_TRUE(Round->isId()) << Round->str();
}

TEST_F(CoercionTest, RefCoercionCarriesTargetAndLabel) {
  // Monotonic mode depends on RefC recording its target view.
  const Coercion *C = mk("(Ref Int)", "(Ref Dyn)", "here");
  ASSERT_EQ(C->kind(), CoercionKind::RefC);
  EXPECT_EQ(C->type(), ty("(Ref Dyn)"));
  EXPECT_EQ(C->label(), "here");
  // Composition keeps the *newer* cast's target and label.
  const Coercion *D = mk("(Ref Dyn)", "(Ref Int)", "newer");
  const Coercion *CD = F.compose(C, D);
  if (CD->kind() == CoercionKind::RefC) {
    EXPECT_EQ(CD->type(), ty("(Ref Int)"));
    EXPECT_EQ(CD->label(), "newer");
  } else {
    EXPECT_TRUE(CD->isId()); // full cancellation is also correct
  }
}

TEST_F(CoercionTest, NormalFormAfterMake) {
  const char *Pairs[][2] = {
      {"Int", "Dyn"},
      {"Dyn", "(Int -> Bool)"},
      {"(Int -> Dyn)", "(Dyn -> Int)"},
      {"(Tuple Int (Ref Dyn))", "(Tuple Dyn (Ref Int))"},
      {"(Vect Dyn)", "(Vect Int)"},
      {"(Rec s (Tuple Int (-> s)))", "(Rec s (Tuple Dyn (-> s)))"},
      {"Int", "Bool"},
  };
  for (auto &P : Pairs) {
    const Coercion *C = mk(P[0], P[1]);
    EXPECT_TRUE(CoercionFactory::isNormalForm(C))
        << P[0] << " => " << P[1] << " gave " << C->str();
  }
}

//===----------------------------------------------------------------------===//
// Property sweeps
//===----------------------------------------------------------------------===//

namespace {

const Type *randomType(TypeContext &Ctx, RNG &Gen, unsigned Depth) {
  unsigned Choice = Gen.below(Depth == 0 ? 4 : 8);
  switch (Choice) {
  case 0:
    return Ctx.dyn();
  case 1:
    return Ctx.integer();
  case 2:
    return Ctx.boolean();
  case 3:
    return Ctx.unit();
  case 4: {
    std::vector<const Type *> Params;
    unsigned NumParams = Gen.below(3);
    for (unsigned I = 0; I != NumParams; ++I)
      Params.push_back(randomType(Ctx, Gen, Depth - 1));
    return Ctx.function(std::move(Params), randomType(Ctx, Gen, Depth - 1));
  }
  case 5: {
    std::vector<const Type *> Elements;
    unsigned NumElements = 1 + Gen.below(2);
    for (unsigned I = 0; I != NumElements; ++I)
      Elements.push_back(randomType(Ctx, Gen, Depth - 1));
    return Ctx.tuple(std::move(Elements));
  }
  case 6:
    return Ctx.box(randomType(Ctx, Gen, Depth - 1));
  default:
    return Ctx.vect(randomType(Ctx, Gen, Depth - 1));
  }
}

} // namespace

class CoercionLawsTest : public ::testing::TestWithParam<int> {};

TEST_P(CoercionLawsTest, MakeRespectsSpaceBound) {
  TypeContext Types;
  CoercionFactory F(Types);
  RNG Gen(GetParam() * 104729 + 1);
  for (int Iter = 0; Iter != 300; ++Iter) {
    const Type *S = randomType(Types, Gen, 3);
    const Type *T = randomType(Types, Gen, 3);
    const Coercion *C = F.make(S, T, "p");
    ASSERT_TRUE(CoercionFactory::isNormalForm(C));
    unsigned H = std::max(S->height(), T->height());
    EXPECT_LE(C->size(), 5u * ((1u << H) - 1))
        << S->str() << " => " << T->str() << " : " << C->str();
  }
}

TEST_P(CoercionLawsTest, ComposeClosedUnderNormalForm) {
  TypeContext Types;
  CoercionFactory F(Types);
  RNG Gen(GetParam() * 7 + 99);
  for (int Iter = 0; Iter != 300; ++Iter) {
    // Build composable coercions: S => M and M => T share the middle type.
    const Type *S = randomType(Types, Gen, 2);
    const Type *M = randomType(Types, Gen, 2);
    const Type *T = randomType(Types, Gen, 2);
    const Coercion *C = F.make(S, M, "p1");
    const Coercion *D = F.make(M, T, "p2");
    const Coercion *E = F.compose(C, D);
    ASSERT_TRUE(CoercionFactory::isNormalForm(E))
        << C->str() << " ; " << D->str() << " = " << E->str();
    // Composition respects the same height-derived bound.
    unsigned H = std::max({S->height(), M->height(), T->height()});
    EXPECT_LE(E->size(), 5u * ((1u << H) - 1));
  }
}

TEST_P(CoercionLawsTest, ComposeAssociativeStructurally) {
  TypeContext Types;
  CoercionFactory F(Types);
  RNG Gen(GetParam() * 31 + 5);
  for (int Iter = 0; Iter != 200; ++Iter) {
    const Type *A = randomType(Types, Gen, 2);
    const Type *B = randomType(Types, Gen, 2);
    const Type *C = randomType(Types, Gen, 2);
    const Type *D = randomType(Types, Gen, 2);
    const Coercion *AB = F.make(A, B, "p1");
    const Coercion *BC = F.make(B, C, "p2");
    const Coercion *CD = F.make(C, D, "p3");
    const Coercion *Left = F.compose(F.compose(AB, BC), CD);
    const Coercion *Right = F.compose(AB, F.compose(BC, CD));
    // Structural (pointer) equality thanks to interning + normal forms.
    EXPECT_EQ(Left, Right)
        << "left: " << Left->str() << "\nright: " << Right->str();
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, CoercionLawsTest,
                         ::testing::Range(0, 8));

TEST_F(CoercionTest, NestedSubCoercionsAreInternedAcrossMakes) {
  // makeImpl routes μ-free structural subpairs through makeInterned, so
  // deriving an outer coercion seeds MakeCache with every nested
  // subderivation: re-making any of those subpairs afterwards must
  // allocate zero new nodes.
  const Coercion *Outer = mk("(Tuple (Tuple Int Bool) (Int -> Bool))",
                             "(Tuple (Tuple Dyn Bool) (Dyn -> Bool))");
  ASSERT_FALSE(Outer->isId());
  size_t Nodes = F.allocatedNodes();
  mk("(Tuple Int Bool)", "(Tuple Dyn Bool)");
  mk("(Int -> Bool)", "(Dyn -> Bool)");
  mk("Int", "Dyn");
  EXPECT_EQ(F.allocatedNodes(), Nodes);
}

TEST_F(CoercionTest, RecursiveSubderivationsStillTieKnots) {
  // μ-typed pairs keep the frame-stack path (their subderivations are
  // not self-contained), and the result is unchanged by the caching of
  // μ-free subpairs around them.
  const Coercion *C = mk("(Rec s (Tuple Int (-> s)))",
                         "(Rec s (Tuple Dyn (-> s)))");
  EXPECT_TRUE(CoercionFactory::isNormalForm(C));
  EXPECT_TRUE(C->hasRec());
}

TEST_F(CoercionTest, ResetStartsAFreshEpoch) {
  const Coercion *C = mk("Int", "Dyn");
  ASSERT_TRUE(C->isInjectSeq());
  EXPECT_GT(F.allocatedNodes(), 1u);
  F.reset();
  EXPECT_EQ(F.allocatedNodes(), 1u); // ι only
  EXPECT_TRUE(F.id()->isId());
  // The factory is fully usable in the new epoch.
  const Coercion *C2 = mk("Int", "Dyn");
  ASSERT_TRUE(C2->isInjectSeq());
  EXPECT_TRUE(CoercionFactory::isNormalForm(C2));
  const Coercion *Mu = mk("(Rec s (Tuple Int (-> s)))",
                          "(Rec s (Tuple Dyn (-> s)))");
  EXPECT_TRUE(CoercionFactory::isNormalForm(Mu));
}
