//===----------------------------------------------------------------------===//
///
/// \file
/// Type-directed random program generator shared by the differential
/// fuzz suites (test_fuzz.cpp) and the fused-vs-unfused VM dispatch
/// tests (test_vm.cpp). Produces well-typed gradual programs whose
/// casts only move along precision ladders, so every generated program
/// runs successfully in every engine and cast mode. Programs are
/// emitted as *source text* so the reader, parser, and checker are
/// exercised along with the back ends.
///
//===----------------------------------------------------------------------===//
#ifndef GRIFT_TESTS_FUZZGEN_H
#define GRIFT_TESTS_FUZZGEN_H

#include "support/RNG.h"
#include "types/TypeContext.h"

#include <string>
#include <vector>

namespace grift::fuzz {

/// Generates expressions of a requested type, tracking variables in
/// scope. Emits concrete syntax directly.
class ProgramGen {
public:
  /// \p FloatBias skews generation toward Float-typed expressions and
  /// mixes IEEE edge values (±0.0, huge/tiny magnitudes, and NaN/inf
  /// producers like fl/ by zero) into the float grammar — the stressor
  /// for the NaN-boxed value representation, where every double bit
  /// pattern must survive arithmetic, casts, and Dyn round trips.
  ProgramGen(TypeContext &Types, RNG &Gen, bool FloatBias = false)
      : Types(Types), Gen(Gen), FloatBias(FloatBias) {}

  /// A whole program: a couple of definitions plus a final expression of
  /// printable type.
  std::string program() {
    std::string Out;
    unsigned NumDefs = 1 + Gen.below(3);
    for (unsigned I = 0; I != NumDefs; ++I) {
      const Type *Ret = scalarType();
      std::vector<const Type *> Params;
      unsigned Arity = 1 + Gen.below(2);
      for (unsigned P = 0; P != Arity; ++P)
        Params.push_back(scalarType());
      std::string Name = "g" + std::to_string(I);
      Out += "(define (" + Name;
      std::vector<Binding> Saved = Scope;
      for (unsigned P = 0; P != Arity; ++P) {
        std::string PName = Name + "p" + std::to_string(P);
        Out += " [" + PName + " : " + Params[P]->str() + "]";
        Scope.push_back({PName, Params[P]});
      }
      Out += ") : " + Ret->str() + " " + expr(Ret, 3) + ")\n";
      Scope = Saved;
      Funcs.push_back({Name, Types.function(std::move(Params), Ret)});
    }
    const Type *Final = scalarType();
    Out += expr(Final, 4) + "\n";
    return Out;
  }

private:
  struct Binding {
    std::string Name;
    const Type *Ty;
  };

  TypeContext &Types;
  RNG &Gen;
  bool FloatBias = false;
  std::vector<Binding> Scope;
  std::vector<Binding> Funcs;
  unsigned NextVar = 0;

  /// Scalar-ish result types keep final values printable/comparable.
  const Type *scalarType() {
    if (FloatBias && Gen.flip(0.5))
      return Types.floating();
    switch (Gen.below(4)) {
    case 0:
      return Types.integer();
    case 1:
      return Types.boolean();
    case 2:
      return Types.floating();
    default:
      return Types.tuple({Types.integer(), Types.boolean()});
    }
  }

  std::string literal(const Type *T) {
    switch (T->kind()) {
    case TypeKind::Int:
      return std::to_string(static_cast<int64_t>(Gen.below(200)) - 100);
    case TypeKind::Bool:
      return Gen.flip(0.5) ? "#t" : "#f";
    case TypeKind::Float: {
      if (FloatBias && Gen.flip(0.25)) {
        // IEEE edge values: signed zeros, extremes of the exponent
        // range, and values whose sums/products overflow to infinity.
        static const char *Edges[] = {"-0.0",    "0.0",    "1e308",
                                      "-1e308",  "5e-324", "-5e-324",
                                      "1.5e300", "-2.5e300"};
        return Edges[Gen.below(sizeof(Edges) / sizeof(Edges[0]))];
      }
      return std::to_string(static_cast<int64_t>(Gen.below(64))) + "." +
             std::to_string(Gen.below(100));
    }
    case TypeKind::Unit:
      return "()";
    case TypeKind::Char:
      return std::string("#\\") + static_cast<char>('a' + Gen.below(26));
    case TypeKind::Tuple: {
      std::string Out = "(tuple";
      for (size_t I = 0; I != T->tupleSize(); ++I)
        Out += " " + literal(T->element(I));
      return Out + ")";
    }
    case TypeKind::Box:
      return "(box " + literal(T->inner()) + ")";
    case TypeKind::Vect:
      return "(make-vector 2 " + literal(T->inner()) + ")";
    case TypeKind::Function: {
      std::string Out = "(lambda (";
      std::vector<std::string> Params;
      for (size_t I = 0; I != T->arity(); ++I) {
        std::string Name = "v" + std::to_string(NextVar++);
        Out += (I ? " [" : "[") + Name + " : " + T->param(I)->str() + "]";
        Params.push_back(Name);
      }
      Out += ") : " + T->result()->str() + " ";
      // Body: a literal of the result type (params unused is fine).
      Out += literal(T->result());
      return Out + ")";
    }
    default:
      return "0";
    }
  }

  /// Variables of exactly type \p T currently in scope.
  std::string varOfType(const Type *T) {
    std::vector<const Binding *> Matches;
    for (const Binding &B : Scope)
      if (B.Ty == T)
        Matches.push_back(&B);
    if (Matches.empty())
      return "";
    return Matches[Gen.below(Matches.size())]->Name;
  }

  std::string expr(const Type *T, unsigned Depth) {
    if (Depth == 0) {
      std::string Var = varOfType(T);
      return Var.empty() ? literal(T) : Var;
    }
    switch (Gen.below(10)) {
    case 0: { // literal / variable
      std::string Var = varOfType(T);
      return Var.empty() || Gen.flip(0.3) ? literal(T) : Var;
    }
    case 1: // if
      return "(if " + expr(Types.boolean(), Depth - 1) + " " +
             expr(T, Depth - 1) + " " + expr(T, Depth - 1) + ")";
    case 2: { // let
      std::string Name = "v" + std::to_string(NextVar++);
      const Type *BindTy = scalarType();
      std::string Init = expr(BindTy, Depth - 1);
      Scope.push_back({Name, BindTy});
      std::string Body = expr(T, Depth - 1);
      Scope.pop_back();
      return "(let ([" + Name + " : " + BindTy->str() + " " + Init + "]) " +
             Body + ")";
    }
    case 3: // Dyn round trip: the gradual-typing stressor
      return "(ann (ann " + expr(T, Depth - 1) + " Dyn) " + T->str() + ")";
    case 4: { // call a generated top-level function (possibly via Dyn)
      if (Funcs.empty() || !typeEq(T))
        return expr(T, 0);
      std::vector<const Binding *> Usable;
      for (const Binding &F : Funcs)
        if (F.Ty->result() == T)
          Usable.push_back(&F);
      if (Usable.empty())
        return expr(T, 0);
      const Binding &F = *Usable[Gen.below(Usable.size())];
      bool ViaDyn = Gen.flip(0.3);
      std::string Out =
          ViaDyn ? "((ann (ann " + F.Name + " Dyn) " + F.Ty->str() + ")"
                 : "(" + F.Name;
      for (size_t I = 0; I != F.Ty->arity(); ++I)
        Out += " " + expr(F.Ty->param(I), Depth - 1);
      return Out + ")";
    }
    case 5: { // arithmetic, when T is Int/Bool/Float
      if (T == Types.integer()) {
        const char *Ops[] = {"+", "-", "*"};
        return std::string("(") + Ops[Gen.below(3)] + " " +
               expr(Types.integer(), Depth - 1) + " " +
               expr(Types.integer(), Depth - 1) + ")";
      }
      if (T == Types.boolean()) {
        if (FloatBias && Gen.flip(0.5)) {
          // Float comparisons: NaN makes every one of these false, and
          // fl= treats -0.0 and 0.0 as equal — both engines must agree.
          const char *Ops[] = {"fl<", "fl<=", "fl=", "fl>=", "fl>"};
          return std::string("(") + Ops[Gen.below(5)] + " " +
                 expr(Types.floating(), Depth - 1) + " " +
                 expr(Types.floating(), Depth - 1) + ")";
        }
        const char *Ops[] = {"<", "<=", "=", "not"};
        unsigned Pick = Gen.below(4);
        if (Pick == 3)
          return "(not " + expr(Types.boolean(), Depth - 1) + ")";
        return std::string("(") + Ops[Pick] + " " +
               expr(Types.integer(), Depth - 1) + " " +
               expr(Types.integer(), Depth - 1) + ")";
      }
      if (T == Types.floating()) {
        if (FloatBias && Gen.flip(0.3)) {
          // fl/ reaches ±inf and NaN (x/0.0, 0.0/0.0); the unary rail
          // covers sign and NaN propagation through libm.
          const char *Unary[] = {"flnegate", "flabs", "flsqrt", "flfloor"};
          if (Gen.flip(0.4))
            return std::string("(") + Unary[Gen.below(4)] + " " +
                   expr(Types.floating(), Depth - 1) + ")";
          return "(fl/ " + expr(Types.floating(), Depth - 1) + " " +
                 expr(Types.floating(), Depth - 1) + ")";
        }
        const char *Ops[] = {"fl+", "fl-", "fl*", "flmin", "flmax"};
        return std::string("(") + Ops[Gen.below(5)] + " " +
               expr(Types.floating(), Depth - 1) + " " +
               expr(Types.floating(), Depth - 1) + ")";
      }
      return expr(T, 0);
    }
    case 6: { // tuple projection from a wider tuple
      const Type *Other =
          Gen.flip(0.5) ? Types.integer() : Types.boolean();
      const Type *TupTy = Gen.flip(0.5) ? Types.tuple({T, Other})
                                        : Types.tuple({Other, T});
      unsigned Index = TupTy->element(0) == T && !Gen.flip(0.1) ? 0 : 1;
      if (TupTy->element(Index) != T)
        Index = 1 - Index;
      return "(tuple-proj " + expr(TupTy, Depth - 1) + " " +
             std::to_string(Index) + ")";
    }
    case 7: // box round trip
      return "(unbox (box " + expr(T, Depth - 1) + "))";
    case 8: { // vector round trip (possibly through a Dyn view)
      std::string Vec = "(make-vector 2 " + expr(T, Depth - 1) + ")";
      if (Gen.flip(0.4))
        return "(vector-ref (ann (ann " + Vec + " Dyn) (Vect " + T->str() +
               ")) " + std::to_string(Gen.below(2)) + ")";
      return "(vector-ref " + Vec + " " + std::to_string(Gen.below(2)) +
             ")";
    }
    default: { // begin with a side-effecting print of an int
      return "(begin (print-int " + expr(Types.integer(), Depth - 1) +
             ") " + expr(T, Depth - 1) + ")";
    }
    }
  }

  bool typeEq(const Type *T) {
    return T == Types.integer() || T == Types.boolean() ||
           T == Types.floating() ||
           T == Types.tuple({Types.integer(), Types.boolean()});
  }
};

} // namespace grift::fuzz

#endif // GRIFT_TESTS_FUZZGEN_H
