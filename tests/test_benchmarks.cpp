//===----------------------------------------------------------------------===//
///
/// \file
/// Integration tests over the paper's benchmark suite: every benchmark
/// compiles and computes its golden output under Static Grift, Grift with
/// coercions, Grift with type-based casts, Dynamic Grift, and randomly
/// sampled partially typed configurations (the gradual guarantee observed
/// end to end).
///
//===----------------------------------------------------------------------===//
#include "bench_programs/Benchmarks.h"
#include "grift/Grift.h"
#include "lattice/Lattice.h"

#include <gtest/gtest.h>

#include <cctype>

using namespace grift;

namespace {

std::string runSource(Grift &G, const std::string &Source, CastMode Mode,
                      const std::string &Input) {
  std::string Errors;
  auto Exe = G.compile(Source, Mode, Errors);
  EXPECT_TRUE(Exe.has_value()) << Errors;
  if (!Exe)
    return "<compile error>";
  RunResult R = Exe->run(Input);
  EXPECT_TRUE(R.OK) << R.Error.str();
  return R.OK ? R.Output : "<run error>";
}

class BenchmarkModes
    : public ::testing::TestWithParam<std::tuple<int, CastMode>> {};

/// gtest parameter names must be alphanumeric.
std::string sanitize(std::string Name) {
  for (char &C : Name)
    if (!std::isalnum(static_cast<unsigned char>(C)))
      C = '_';
  return Name;
}

} // namespace

TEST_P(BenchmarkModes, GoldenOutput) {
  const BenchProgram &B = allBenchmarks()[std::get<0>(GetParam())];
  CastMode Mode = std::get<1>(GetParam());
  Grift G;
  EXPECT_EQ(runSource(G, B.Source, Mode, B.TestInput), B.TestOutput)
      << B.Name << " under " << castModeName(Mode);
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, BenchmarkModes,
    ::testing::Combine(::testing::Range(0, 9),
                       ::testing::Values(CastMode::Static,
                                         CastMode::Coercions,
                                         CastMode::TypeBased)),
    [](const ::testing::TestParamInfo<std::tuple<int, CastMode>> &Info) {
      return sanitize(allBenchmarks()[std::get<0>(Info.param)].Name + "_" +
                      std::string(castModeName(std::get<1>(Info.param))));
    });

namespace {

class BenchmarkDynamic : public ::testing::TestWithParam<int> {};

} // namespace

TEST_P(BenchmarkDynamic, ErasedProgramMatchesGolden) {
  const BenchProgram &B = allBenchmarks()[GetParam()];
  Grift G;
  std::string Errors;
  auto Ast = G.parse(B.Source, Errors);
  ASSERT_TRUE(Ast.has_value()) << Errors;
  Program Erased = eraseTypes(*Ast, G.types());
  EXPECT_LE(programPrecision(Erased), 0.0001);
  for (CastMode Mode : {CastMode::Coercions, CastMode::TypeBased}) {
    auto Exe = G.compileAst(Erased, Mode, Errors);
    ASSERT_TRUE(Exe.has_value()) << Errors;
    RunResult R = Exe->run(B.TestInput);
    ASSERT_TRUE(R.OK) << B.Name << ": " << R.Error.str();
    EXPECT_EQ(R.Output, B.TestOutput) << B.Name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, BenchmarkDynamic,
                         ::testing::Range(0, 9), [](const auto &Info) {
                           return sanitize(allBenchmarks()[Info.param].Name);
                         });

namespace {

class BenchmarkLattice : public ::testing::TestWithParam<int> {};

} // namespace

TEST_P(BenchmarkLattice, SampledConfigurationsAgree) {
  // The gradual guarantee on real programs: partially typed
  // configurations sampled across the precision range all compute the
  // benchmark's golden output in both cast modes.
  const BenchProgram &B = allBenchmarks()[GetParam()];
  Grift G;
  std::string Errors;
  auto Ast = G.parse(B.Source, Errors);
  ASSERT_TRUE(Ast.has_value()) << Errors;
  auto Configs = sampleFineGrained(*Ast, G.types(), 3, 1, 0xC0FFEE + GetParam());
  ASSERT_EQ(Configs.size(), 3u);
  for (const Configuration &C : Configs) {
    for (CastMode Mode : {CastMode::Coercions, CastMode::TypeBased}) {
      auto Exe = G.compileAst(C.Prog, Mode, Errors);
      ASSERT_TRUE(Exe.has_value())
          << B.Name << " precision " << C.Precision << ": " << Errors;
      RunResult R = Exe->run(B.TestInput);
      ASSERT_TRUE(R.OK) << B.Name << ": " << R.Error.str();
      EXPECT_EQ(R.Output, B.TestOutput)
          << B.Name << " precision " << C.Precision << " mode "
          << castModeName(Mode);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, BenchmarkLattice,
                         ::testing::Range(0, 9), [](const auto &Info) {
                           return sanitize(allBenchmarks()[Info.param].Name);
                         });

//===----------------------------------------------------------------------===//
// The Figure 2 / Figure 3 microbenchmarks
//===----------------------------------------------------------------------===//

TEST(MicroBenchmarks, EvenOddFigure2) {
  Grift G;
  for (CastMode Mode : GradualCastModes) {
    EXPECT_EQ(runSource(G, evenOddSource(), Mode, "100"), "#t");
    EXPECT_EQ(runSource(G, evenOddSource(), Mode, "101"), "#f");
  }
}

TEST(MicroBenchmarks, QuicksortFigure3) {
  Grift G;
  for (CastMode Mode : GradualCastModes)
    EXPECT_EQ(runSource(G, quicksortFig3Source(), Mode, "100"), "#t");
}

TEST(MicroBenchmarks, EvenOddChainShapes) {
  // Figure 4 left: type-based chains grow linearly in n; coercions stay
  // at one proxy.
  Grift G;
  std::string Errors;
  auto ExeC = G.compile(evenOddSource(), CastMode::Coercions, Errors);
  auto ExeT = G.compile(evenOddSource(), CastMode::TypeBased, Errors);
  ASSERT_TRUE(ExeC && ExeT) << Errors;
  RunResult C = ExeC->run("500");
  RunResult T = ExeT->run("500");
  ASSERT_TRUE(C.OK && T.OK);
  EXPECT_LE(C.Stats.LongestProxyChain, 1u);
  EXPECT_GE(T.Stats.LongestProxyChain, 250u);
}

TEST(MicroBenchmarks, ProxiedTailLoopReturnCastShapes) {
  // The deep-recursion shape that separates the return-cast protocols:
  // mutual *tail* calls that each go through a freshly cast (proxied)
  // function reference whose result coercion is non-identity (Int! one
  // way, Int?ℓ the other). Tail calls reuse the frame, so the stacked
  // protocol's pending return-cast list grows Θ(n); coercion-passing
  // style composes each appended coercion into the frame's single
  // explicit coercion argument, so per-frame space stays O(1). Same
  // answer, flat proxy chains in both — only the bookkeeping differs.
  static const char *PingPong = R"(
(define ping : (Int -> Dyn)
  (lambda ([n : Int])
    (if (= n 0)
        (ann 0 Dyn)
        ((ann pong (Int -> Dyn)) (- n 1)))))

(define pong : (Int -> Int)
  (lambda ([n : Int])
    (if (= n 0)
        1
        ((ann ping (Int -> Int)) (- n 1)))))

(define n : Int (read-int))
(print-int (ann (ping n) Int))
)";
  Grift G;
  std::string Errors;
  auto Stacked = G.compile(PingPong, CastMode::Coercions, Errors);
  auto Passing = G.compile(PingPong, CastMode::CoercionPassing, Errors);
  ASSERT_TRUE(Stacked && Passing) << Errors;
  RunResult S = Stacked->run("500");
  RunResult P = Passing->run("500");
  ASSERT_TRUE(S.OK && P.OK) << S.Error.str() << P.Error.str();
  EXPECT_EQ(S.Output, P.Output);
  EXPECT_LE(P.Stats.MaxRetCastsPerFrame, 1u);
  EXPECT_LE(P.Stats.LongestProxyChain, 1u);
  EXPECT_GE(S.Stats.MaxRetCastsPerFrame, 250u);
  // The composed protocol must actually be composing, not just short.
  EXPECT_GE(P.Stats.Compositions, 250u);
}

TEST(MicroBenchmarks, QuicksortFigure3ChainShapes) {
  Grift G;
  std::string Errors;
  auto ExeC = G.compile(quicksortFig3Source(), CastMode::Coercions, Errors);
  auto ExeT = G.compile(quicksortFig3Source(), CastMode::TypeBased, Errors);
  ASSERT_TRUE(ExeC && ExeT) << Errors;
  RunResult C = ExeC->run("128");
  RunResult T = ExeT->run("128");
  ASSERT_TRUE(C.OK && T.OK);
  EXPECT_LE(C.Stats.LongestProxyChain, 1u);
  // Sorted input: recursion depth ≈ n, so chains approach n.
  EXPECT_GE(T.Stats.LongestProxyChain, 64u);
  // And the type-based run performs asymptotically more cast work.
  EXPECT_GT(T.Stats.CastsApplied, 4 * C.Stats.CastsApplied);
}
