//===----------------------------------------------------------------------===//
///
/// \file
/// Edge-case tests for the NaN-boxed value representation
/// (runtime/Value.h). Floats are stored as raw IEEE-754 doubles in the
/// 64-bit value word; everything else lives in the negative quiet-NaN
/// space above 0xFFF8... — so the representation is only sound if
///
///   * every non-NaN double round-trips bit-exactly,
///   * every NaN the hardware can produce (including the x86 default
///     0xFFF8000000000000, which IS the tag base) is canonicalized into
///     a float that cannot be mistaken for a pointer or fixnum, and
///   * the VM's float paths (arithmetic, comparison, printing, Dyn
///     injection/projection in all three cast modes) preserve these
///     values end to end with IEEE semantics.
///
//===----------------------------------------------------------------------===//
#include "grift/Grift.h"
#include "runtime/Value.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>

using namespace grift;

namespace {

uint64_t bitsOf(double D) {
  uint64_t Bits;
  std::memcpy(&Bits, &D, sizeof(Bits));
  return Bits;
}

double doubleFromBits(uint64_t Bits) {
  double D;
  std::memcpy(&D, &Bits, sizeof(D));
  return D;
}

/// Compiles and runs \p Source under \p Mode; returns printed output
/// (empty on failure, with a gtest failure recorded).
std::string runProgram(const std::string &Source, CastMode Mode) {
  Grift G;
  std::string Errors;
  auto Exe = G.compile(Source, Mode, Errors);
  EXPECT_TRUE(Exe.has_value()) << Errors << "\nprogram:\n" << Source;
  if (!Exe)
    return "";
  RunResult R = Exe->run();
  EXPECT_TRUE(R.OK) << R.Error.str() << "\nprogram:\n" << Source;
  return R.Output;
}

const CastMode AllModes[] = {CastMode::Coercions, CastMode::TypeBased,
                             CastMode::Monotonic};

} // namespace

//===----------------------------------------------------------------------===//
// Value-level encoding
//===----------------------------------------------------------------------===//

TEST(NanBox, NonNaNDoublesRoundTripBitExactly) {
  const double Cases[] = {0.0,
                          -0.0,
                          1.0,
                          -1.0,
                          0.1,
                          std::numeric_limits<double>::max(),
                          std::numeric_limits<double>::lowest(),
                          std::numeric_limits<double>::min(),
                          std::numeric_limits<double>::denorm_min(),
                          -std::numeric_limits<double>::denorm_min(),
                          std::numeric_limits<double>::infinity(),
                          -std::numeric_limits<double>::infinity(),
                          6.02214076e23};
  for (double D : Cases) {
    Value V = Value::fromFloat(D);
    EXPECT_TRUE(V.isFloat()) << D;
    EXPECT_FALSE(V.isFixnum()) << D;
    EXPECT_FALSE(V.isHeap()) << D;
    EXPECT_EQ(bitsOf(V.asFloat()), bitsOf(D)) << D;
  }
  // Signed zero keeps its sign bit through the encoding.
  EXPECT_TRUE(std::signbit(Value::fromFloat(-0.0).asFloat()));
  EXPECT_FALSE(std::signbit(Value::fromFloat(0.0).asFloat()));
}

TEST(NanBox, EveryNaNPatternCanonicalizesIntoFloatSpace) {
  // The dangerous patterns: the x86 hardware default quiet NaN
  // 0xFFF8000000000000 is exactly the tag base, and NaNs with arbitrary
  // payloads can land anywhere in the pointer/fixnum tag space.
  const uint64_t NaNBits[] = {
      0xFFF8000000000000ull, // x86 default QNaN == Value tag base
      0xFFF8000000000001ull, // would alias a fixnum payload
      0xFFF9000000001234ull, // would alias a heap pointer
      0xFFFFFFFFFFFFFFFFull, // all ones
      0x7FF8000000000000ull, // positive quiet NaN (the canonical one)
      0x7FF0000000000001ull, // positive signaling NaN
      0xFFF0000000000001ull, // negative signaling NaN
  };
  for (uint64_t Bits : NaNBits) {
    double D = doubleFromBits(Bits);
    ASSERT_TRUE(std::isnan(D));
    Value V = Value::fromFloat(D);
    EXPECT_TRUE(V.isFloat()) << std::hex << Bits;
    EXPECT_FALSE(V.isHeap()) << std::hex << Bits;
    EXPECT_FALSE(V.isProxy()) << std::hex << Bits;
    EXPECT_FALSE(V.isFixnum()) << std::hex << Bits;
    EXPECT_FALSE(V.isImm()) << std::hex << Bits;
    EXPECT_TRUE(std::isnan(V.asFloat())) << std::hex << Bits;
  }
  // Canonicalization makes NaN == NaN at the Value level (bitwise
  // equality is sound because only one NaN representation survives).
  EXPECT_EQ(Value::fromFloat(doubleFromBits(0xFFF8000000000000ull)),
            Value::fromFloat(doubleFromBits(0x7FF8000000000001ull)));
}

TEST(NanBox, ComputedHardwareNaNIsSafe) {
  // 0.0/0.0 produces the hardware's own quiet NaN — on x86-64 the
  // negative pattern that collides with the tag base. This must go
  // through fromFloat's canonicalization, not around it.
  double Zero = 0.0;
  double HwNaN = Zero / Zero;
  Value V = Value::fromFloat(HwNaN);
  EXPECT_TRUE(V.isFloat());
  EXPECT_TRUE(std::isnan(V.asFloat()));
  Value W = Value::fromFloat(std::sqrt(-1.0));
  EXPECT_TRUE(W.isFloat());
  EXPECT_EQ(V, W); // both canonicalized
}

TEST(NanBox, FixnumBoundariesDoNotLeakIntoFloatSpace) {
  const int64_t Cases[] = {0, 1, -1, Value::FixnumMax, Value::FixnumMin,
                           Value::FixnumMax - 1, Value::FixnumMin + 1};
  for (int64_t I : Cases) {
    Value V = Value::fromFixnum(I);
    EXPECT_TRUE(V.isFixnum()) << I;
    EXPECT_FALSE(V.isFloat()) << I;
    EXPECT_EQ(V.asFixnum(), I);
  }
}

TEST(NanBox, ImmediatesAreDistinctAndTyped) {
  Value Unit = Value::unit();
  Value True = Value::fromBool(true);
  Value False = Value::fromBool(false);
  Value A = Value::fromChar('a');
  EXPECT_TRUE(Unit.isImm());
  EXPECT_FALSE(Unit.isFloat());
  EXPECT_FALSE(Unit == True);
  EXPECT_FALSE(True == False);
  EXPECT_FALSE(Unit == A);
  EXPECT_TRUE(True.asBool());
  EXPECT_FALSE(False.asBool());
  EXPECT_EQ(A.asChar(), 'a');
  // Default-constructed Value is unit: the GC-safe initial slot fill.
  EXPECT_TRUE(Value() == Unit);
}

//===----------------------------------------------------------------------===//
// Program-level: literals, arithmetic, printing
//===----------------------------------------------------------------------===//

TEST(NanBox, SpecialValueLiteralsAndPrinting) {
  for (CastMode Mode : AllModes) {
    EXPECT_EQ(runProgram("(print-float (fl/ 1.0 0.0))", Mode), "+inf.0");
    EXPECT_EQ(runProgram("(print-float (fl/ -1.0 0.0))", Mode), "-inf.0");
    EXPECT_EQ(runProgram("(print-float (fl/ 0.0 0.0))", Mode), "+nan.0");
    EXPECT_EQ(runProgram("(print-float -0.0)", Mode), "-0.0");
    EXPECT_EQ(runProgram("(print-float 1e308)", Mode), "1e+308");
    EXPECT_EQ(runProgram("(print-float 5e-324)", Mode), "5e-324");
  }
}

TEST(NanBox, NaNPropagatesThroughArithmetic) {
  for (CastMode Mode : AllModes) {
    // NaN is sticky through every arithmetic path, including the fused
    // PushFloatPrim superinstruction.
    EXPECT_EQ(runProgram("(print-float (fl+ (fl/ 0.0 0.0) 1.0))", Mode),
              "+nan.0");
    EXPECT_EQ(runProgram("(print-float (fl* (fl/ 0.0 0.0) 0.0))", Mode),
              "+nan.0");
    EXPECT_EQ(runProgram("(print-float (flsqrt -1.0))", Mode), "+nan.0");
    // Infinity arithmetic: inf - inf is NaN, inf + 1 stays inf.
    EXPECT_EQ(
        runProgram("(print-float (fl- (fl/ 1.0 0.0) (fl/ 1.0 0.0)))", Mode),
        "+nan.0");
    EXPECT_EQ(runProgram("(print-float (fl+ (fl/ 1.0 0.0) 1.0))", Mode),
              "+inf.0");
  }
}

TEST(NanBox, FloatComparisonsFollowIEEENotBitwise) {
  for (CastMode Mode : AllModes) {
    // NaN compares unequal to everything, including itself — even
    // though canonicalized NaNs are bitwise identical in the Value.
    EXPECT_EQ(runProgram("(print-bool (let ([n : Float (fl/ 0.0 0.0)])"
                         " (fl= n n)))",
                         Mode),
              "#f");
    EXPECT_EQ(runProgram("(print-bool (fl< (fl/ 0.0 0.0) 1.0))", Mode),
              "#f");
    EXPECT_EQ(runProgram("(print-bool (fl>= (fl/ 0.0 0.0) 1.0))", Mode),
              "#f");
    // Signed zeros are IEEE-equal but bitwise distinct.
    EXPECT_EQ(runProgram("(print-bool (fl= -0.0 0.0))", Mode), "#t");
    EXPECT_EQ(runProgram("(print-bool (fl< -0.0 0.0))", Mode), "#f");
  }
}

//===----------------------------------------------------------------------===//
// Float <-> Dyn round trips in every cast mode
//===----------------------------------------------------------------------===//

TEST(NanBox, FloatDynRoundTripsPreserveEveryEdgeValue) {
  const char *Producers[] = {
      "(fl/ 0.0 0.0)",  // NaN
      "(fl/ 1.0 0.0)",  // +inf
      "(fl/ -1.0 0.0)", // -inf
      "-0.0", "1e308", "5e-324", "3.25",
  };
  for (CastMode Mode : AllModes) {
    for (const char *P : Producers) {
      std::string Direct =
          runProgram(std::string("(print-float ") + P + ")", Mode);
      std::string Tripped = runProgram(
          std::string("(print-float (ann (ann ") + P + " Dyn) Float))",
          Mode);
      EXPECT_EQ(Direct, Tripped)
          << P << " under mode " << static_cast<int>(Mode);
    }
  }
}

TEST(NanBox, FloatsThroughDynVectorsAndTuples) {
  // Structured casts: a float stored in a (Vect Dyn) viewed as
  // (Vect Float), and a tuple field crossing Dyn — exercises the
  // coercion projection path on immediates in every mode.
  for (CastMode Mode : AllModes) {
    EXPECT_EQ(runProgram("(print-float (vector-ref (ann (ann"
                         " (make-vector 2 (fl/ 0.0 0.0)) Dyn)"
                         " (Vect Float)) 1))",
                         Mode),
              "+nan.0");
    EXPECT_EQ(runProgram("(print-float (tuple-proj (ann (ann"
                         " (tuple -0.0 1) Dyn) (Tuple Float Int)) 0))",
                         Mode),
              "-0.0");
  }
}

TEST(NanBox, ProjectingNonFloatFromDynStillBlames) {
  // Self-describing float tags must not make projection lax: an Int in
  // Dyn projected at Float is still a cast error in every mode.
  for (CastMode Mode : AllModes) {
    Grift G;
    std::string Errors;
    auto Exe =
        G.compile("(print-float (ann (ann 7 Dyn) Float))", Mode, Errors);
    ASSERT_TRUE(Exe.has_value()) << Errors;
    RunResult R = Exe->run();
    EXPECT_FALSE(R.OK) << "mode " << static_cast<int>(Mode);
    EXPECT_TRUE(R.Error.isBlame()) << R.Error.str();
  }
}
