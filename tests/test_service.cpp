//===----------------------------------------------------------------------===//
///
/// \file
/// The hardened execution service: engine pool with per-slot compile
/// caches, watchdog cancellation, retry/backoff, circuit breaker — and
/// the concurrency guarantees they compose into: a wedged job can always
/// be killed from outside, its pool thread is immediately reusable, and
/// error outcomes are deterministic per (program, limits) even under an
/// 8-thread mixed-soup load.
///
//===----------------------------------------------------------------------===//
#include "service/ExecService.h"

#include "refinterp/RefInterp.h"

#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <thread>

using namespace grift;
using namespace grift::service;

namespace {

/// A divergent tail loop: runs forever in constant space on the VM, so
/// only an out-of-band cancel (or an in-band budget) can stop it.
const char *DivergentLoop = "(letrec ([loop (lambda () (loop))]) (loop))";

/// A tail loop that retains an ever-growing chain of boxes (OOM bait).
const char *HeapGrower =
    "(letrec ([f : (Int Dyn -> Int)"
    "           (lambda ([n : Int] [l : Dyn]) : Int"
    "             (f (+ n 1) (ann (box l) Dyn)))])"
    "  (f 0 (ann 0 Dyn)))";

JobSpec simpleJob(std::string Source, std::string Id = "") {
  JobSpec Spec;
  Spec.Id = std::move(Id);
  Spec.Source = std::move(Source);
  return Spec;
}

} // namespace

//===----------------------------------------------------------------------===//
// Pool basics
//===----------------------------------------------------------------------===//

TEST(ServicePool, RunsManyJobsAcrossThreads) {
  ServiceConfig Config;
  Config.Threads = 8;
  ExecService Service(Config);
  std::vector<std::future<JobResult>> Futures;
  for (int I = 0; I != 64; ++I)
    Futures.push_back(
        Service.submit(simpleJob("(+ " + std::to_string(I) + " 1)")));
  for (int I = 0; I != 64; ++I) {
    JobResult R = Futures[I].get();
    ASSERT_EQ(R.Status, JobStatus::Done) << R.ErrorMessage;
    EXPECT_EQ(R.ResultText, std::to_string(I + 1));
    EXPECT_EQ(R.Attempts, 1u);
  }
  ServiceStats S = Service.stats();
  EXPECT_EQ(S.JobsSubmitted, 64u);
  EXPECT_EQ(S.JobsCompleted, 64u);
  EXPECT_EQ(S.JobsRejected, 0u);
}

TEST(ServicePool, CompileErrorsAreReportedNotCrashes) {
  ServiceConfig Config;
  Config.Threads = 2;
  ExecService Service(Config);
  JobResult R = Service.run(simpleJob("(+ 1"));
  EXPECT_EQ(R.Status, JobStatus::CompileError);
  EXPECT_FALSE(R.ErrorMessage.empty());
  // The worker survives and runs the next job.
  JobResult R2 = Service.run(simpleJob("(+ 1 2)"));
  EXPECT_EQ(R2.Status, JobStatus::Done);
  EXPECT_EQ(R2.ResultText, "3");
}

TEST(ServicePool, CompileCacheHitsOnResubmission) {
  ServiceConfig Config;
  Config.Threads = 1;
  ExecService Service(Config);
  JobResult First = Service.run(simpleJob("(* 6 7)"));
  ASSERT_EQ(First.Status, JobStatus::Done);
  EXPECT_FALSE(First.CompileCacheHit);
  JobResult Second = Service.run(simpleJob("(* 6 7)"));
  ASSERT_EQ(Second.Status, JobStatus::Done);
  EXPECT_TRUE(Second.CompileCacheHit);
  EXPECT_EQ(Second.ResultText, "42");
  ServiceStats S = Service.stats();
  EXPECT_EQ(S.CacheHits, 1u);
  EXPECT_EQ(S.CacheMisses, 1u);
  // Different mode = different cache entry.
  JobSpec TB = simpleJob("(* 6 7)");
  TB.Mode = CastMode::TypeBased;
  EXPECT_FALSE(Service.run(TB).CompileCacheHit);
}

TEST(ServicePool, NegativeCacheCoversCompileFailures) {
  ServiceConfig Config;
  Config.Threads = 1;
  ExecService Service(Config);
  EXPECT_EQ(Service.run(simpleJob("(+ 1")).Status, JobStatus::CompileError);
  JobResult Again = Service.run(simpleJob("(+ 1"));
  EXPECT_EQ(Again.Status, JobStatus::CompileError);
  EXPECT_TRUE(Again.CompileCacheHit);
}

//===----------------------------------------------------------------------===//
// Watchdog cancellation
//===----------------------------------------------------------------------===//

TEST(ServiceWatchdog, CancelTokenStopsTheVMDirectly) {
  // The engine-level contract the watchdog builds on: a pre-set token
  // cancels at the first dispatch-batch boundary.
  Grift G;
  std::string Errors;
  auto Exe = G.compile(DivergentLoop, CastMode::Coercions, Errors);
  ASSERT_TRUE(Exe.has_value()) << Errors;
  std::atomic<bool> Cancel{true};
  RunLimits Limits;
  Limits.Cancel = &Cancel;
  RunResult R = Exe->run("", Limits);
  ASSERT_FALSE(R.OK);
  EXPECT_EQ(R.Error.Kind, ErrorKind::Cancelled) << R.Error.str();
  EXPECT_TRUE(R.Error.isResourceExhaustion());
  // The engine is immediately reusable.
  auto Exe2 = G.compile("(+ 1 2)", CastMode::Coercions, Errors);
  ASSERT_TRUE(Exe2.has_value());
  EXPECT_TRUE(Exe2->run().OK);
}

TEST(ServiceWatchdog, CancelTokenStopsTheRefInterp) {
  Grift G;
  std::string Errors;
  auto Ast = G.parse(DivergentLoop, Errors);
  ASSERT_TRUE(Ast.has_value()) << Errors;
  auto Core = G.check(*Ast, Errors);
  ASSERT_TRUE(Core.has_value()) << Errors;
  std::atomic<bool> Cancel{true};
  RunLimits Limits;
  Limits.Cancel = &Cancel;
  refinterp::RefResult R =
      refinterp::interpret(G.types(), G.coercions(), *Core, "", Limits);
  ASSERT_FALSE(R.OK);
  EXPECT_EQ(R.Kind, ErrorKind::Cancelled) << R.Message;
}

TEST(ServiceWatchdog, FiresAtDeadlineAndCountsKills) {
  Watchdog Dog;
  std::atomic<bool> Token{false};
  Dog.watch(Token, Watchdog::Clock::now() + std::chrono::milliseconds(20));
  auto Start = std::chrono::steady_clock::now();
  while (!Token.load() &&
         std::chrono::steady_clock::now() - Start < std::chrono::seconds(5))
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_TRUE(Token.load());
  EXPECT_EQ(Dog.kills(), 1u);
}

TEST(ServiceWatchdog, UnwatchDisarms) {
  Watchdog Dog;
  std::atomic<bool> Token{false};
  uint64_t H =
      Dog.watch(Token, Watchdog::Clock::now() + std::chrono::milliseconds(50));
  Dog.unwatch(H);
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  EXPECT_FALSE(Token.load());
  EXPECT_EQ(Dog.kills(), 0u);
}

/// The acceptance scenario: 20 deliberately divergent jobs with *no*
/// in-band limits are killed by the watchdog, then the same 8 pool
/// threads run 20 normal jobs — all 40 complete with the right kinds
/// and every kill lands within 2x the configured deadline.
TEST(ServiceWatchdog, KillsWedgedJobsAndPoolThreadsStayUsable) {
  constexpr int64_t DeadlineNanos = 250 * 1000000ll; // 250 ms
  ServiceConfig Config;
  Config.Threads = 8;
  ExecService Service(Config);

  std::vector<std::future<JobResult>> Futures;
  for (int I = 0; I != 20; ++I) {
    // Distinct sources so the circuit breaker (keyed per program) never
    // quarantines them into rejections mid-test.
    JobSpec Spec = simpleJob("(letrec ([loop (lambda () (loop))]) (+ " +
                                 std::to_string(I) + " (loop)))",
                             "wedged-" + std::to_string(I));
    Spec.DeadlineNanos = DeadlineNanos;
    Futures.push_back(Service.submit(std::move(Spec)));
  }
  for (int I = 0; I != 20; ++I)
    Futures.push_back(Service.submit(
        simpleJob("(+ " + std::to_string(I) + " 100)",
                  "normal-" + std::to_string(I))));

  for (int I = 0; I != 20; ++I) {
    JobResult R = Futures[I].get();
    ASSERT_EQ(R.Status, JobStatus::Failed) << R.Id;
    EXPECT_EQ(R.Kind, ErrorKind::Cancelled) << R.Id << ": " << R.ErrorMessage;
    // Killed within 2x the deadline (the cancel lands one dispatch
    // batch after the watchdog fires — microseconds, not a margin).
    EXPECT_LT(R.WallNanos, 2 * DeadlineNanos) << R.Id;
    EXPECT_EQ(R.Attempts, 1u) << "cancellation must not be retried";
  }
  for (int I = 20; I != 40; ++I) {
    JobResult R = Futures[I].get();
    ASSERT_EQ(R.Status, JobStatus::Done) << R.Id << ": " << R.ErrorMessage;
    EXPECT_EQ(R.ResultText, std::to_string(I - 20 + 100));
  }
  EXPECT_EQ(Service.stats().WatchdogKills, 20u);
}

//===----------------------------------------------------------------------===//
// Retry / backoff
//===----------------------------------------------------------------------===//

TEST(ServiceRetry, BackoffIsCappedExponential) {
  RetryPolicy P;
  P.InitialBackoffNanos = 1000;
  P.BackoffMultiplier = 4.0;
  P.MaxBackoffNanos = 10000;
  EXPECT_EQ(P.backoffNanos(1), 1000);
  EXPECT_EQ(P.backoffNanos(2), 4000);
  EXPECT_EQ(P.backoffNanos(3), 10000); // capped (16000 -> 10000)
  EXPECT_EQ(P.backoffNanos(10), 10000);
}

TEST(ServiceRetry, DecorrelatedJitterStaysInBoundsAndSpreads) {
  RetryPolicy P;
  P.InitialBackoffNanos = 1000;
  P.MaxBackoffNanos = 27000;
  ASSERT_TRUE(P.DecorrelatedJitter);

  // Per-sequence invariants: retry 0 sleeps 0; every later sleep lies in
  // [base, min(cap, 3 * previous)] and never exceeds the cap, no matter
  // how long the sequence runs.
  RNG Gen(7);
  int64_t Prev = 0;
  EXPECT_EQ(P.jitteredBackoffNanos(0, Prev, Gen), 0);
  int64_t Bound = 3000; // 3 * base
  for (uint32_t Retry = 1; Retry != 64; ++Retry) {
    int64_t Sleep = P.jitteredBackoffNanos(Retry, Prev, Gen);
    EXPECT_GE(Sleep, 1000) << "retry " << Retry;
    EXPECT_LE(Sleep, std::min<int64_t>(Bound, 27000)) << "retry " << Retry;
    Bound = Sleep * 3;
  }

  // Spread: distinct slots (distinct RNG seeds) must not sleep in
  // lockstep — that thundering herd is what the jitter exists to break.
  std::set<int64_t> FirstSleeps;
  for (uint64_t Seed = 0; Seed != 64; ++Seed) {
    RNG G(Seed);
    int64_t Pv = 0;
    FirstSleeps.insert(P.jitteredBackoffNanos(1, Pv, G));
  }
  EXPECT_GT(FirstSleeps.size(), 16u) << "64 seeds collapsed onto few sleeps";
  EXPECT_GT(*FirstSleeps.rbegin() - *FirstSleeps.begin(), 500)
      << "samples span too little of [base, 3*base]";

  // Disabling the jitter falls back to the deterministic schedule.
  P.DecorrelatedJitter = false;
  RNG G2(7);
  int64_t Pv2 = 0;
  EXPECT_EQ(P.jitteredBackoffNanos(2, Pv2, G2), P.backoffNanos(2));
}

TEST(ServiceRetry, TransientOOMRecoversWithRaisedBudget) {
  // ~50k-entry vector needs ~400 KB live; a 256 KB budget OOMs, the
  // retry doubles it to 512 KB and succeeds. Deterministic: heap
  // accounting is exact and each attempt runs on a fresh heap.
  ServiceConfig Config;
  Config.Threads = 1;
  Config.Retry.MaxRetries = 2;
  Config.Retry.HeapGrowthFactor = 2.0;
  Config.Retry.InitialBackoffNanos = 0; // keep the test fast
  ExecService Service(Config);
  JobSpec Spec = simpleJob("(vector-ref (make-vector 50000 7) 49999)");
  Spec.Limits.MaxHeapBytes = 256 * 1024;
  JobResult R = Service.run(std::move(Spec));
  ASSERT_EQ(R.Status, JobStatus::Done) << R.ErrorMessage;
  EXPECT_EQ(R.ResultText, "7");
  EXPECT_EQ(R.Retries, 1u);
  EXPECT_EQ(R.Attempts, 2u);
  EXPECT_EQ(Service.stats().Retries, 1u);
}

TEST(ServiceRetry, PersistentOOMExhaustsRetriesAndStaysOOM) {
  ServiceConfig Config;
  Config.Threads = 1;
  Config.Retry.MaxRetries = 2;
  Config.Retry.HeapGrowthFactor = 1.0; // no extra room: still transient?  no
  Config.Retry.InitialBackoffNanos = 0;
  ExecService Service(Config);
  JobSpec Spec = simpleJob(HeapGrower);
  Spec.Limits.MaxHeapBytes = 1 << 20;
  Spec.Limits.MaxSteps = 100000000; // backstop
  JobResult R = Service.run(std::move(Spec));
  ASSERT_EQ(R.Status, JobStatus::Failed);
  EXPECT_EQ(R.Kind, ErrorKind::OutOfMemory);
  EXPECT_EQ(R.Attempts, 3u); // 1 try + 2 retries
  EXPECT_EQ(R.Retries, 2u);
}

TEST(ServiceRetry, ProgramErrorsAreNeverRetried) {
  ServiceConfig Config;
  Config.Threads = 1;
  ExecService Service(Config);
  JobResult Blame = Service.run(simpleJob("(ann (ann #t Dyn) Int)"));
  ASSERT_EQ(Blame.Status, JobStatus::Failed);
  EXPECT_EQ(Blame.Kind, ErrorKind::Blame);
  EXPECT_EQ(Blame.Attempts, 1u);
  JobResult Trap = Service.run(simpleJob("(/ 1 0)"));
  ASSERT_EQ(Trap.Status, JobStatus::Failed);
  EXPECT_EQ(Trap.Kind, ErrorKind::Trap);
  EXPECT_EQ(Trap.Attempts, 1u);
}

//===----------------------------------------------------------------------===//
// Circuit breaker
//===----------------------------------------------------------------------===//

TEST(ServiceBreaker, UnitOpenRejectHalfOpenClose) {
  CircuitBreaker B({.FailureThreshold = 2, .CooldownNanos = 30'000'000});
  const uint64_t Key = 42;
  EXPECT_TRUE(B.admit(Key));
  B.recordResourceFailure(Key);
  EXPECT_TRUE(B.admit(Key));
  B.recordResourceFailure(Key); // second consecutive: opens
  EXPECT_FALSE(B.admit(Key));
  EXPECT_EQ(B.rejections(), 1u);
  EXPECT_EQ(B.openCircuits(), 1u);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_TRUE(B.admit(Key)); // half-open probe
  EXPECT_FALSE(B.admit(Key)); // only one probe at a time
  B.recordSuccess(Key);       // probe succeeded: closed again
  EXPECT_TRUE(B.admit(Key));
  EXPECT_EQ(B.openCircuits(), 0u);
}

TEST(ServiceBreaker, QuarantinesPoisonProgram) {
  ServiceConfig Config;
  Config.Threads = 1; // sequential: the failure streak is deterministic
  Config.Retry.MaxRetries = 0;
  Config.Breaker.FailureThreshold = 3;
  Config.Breaker.CooldownNanos = 60'000'000'000; // effectively forever
  ExecService Service(Config);

  JobSpec Poison = simpleJob(DivergentLoop);
  Poison.Limits.MaxSteps = 100000; // deterministic FuelExhausted
  for (int I = 0; I != 3; ++I) {
    JobResult R = Service.run(Poison);
    ASSERT_EQ(R.Status, JobStatus::Failed) << I;
    EXPECT_EQ(R.Kind, ErrorKind::FuelExhausted);
  }
  // Circuit is now open: the same program is rejected without running...
  JobResult Rejected = Service.run(Poison);
  EXPECT_EQ(Rejected.Status, JobStatus::Rejected);
  EXPECT_EQ(Rejected.Attempts, 0u);
  EXPECT_GE(Service.stats().JobsRejected, 1u);
  // ...while other programs are unaffected (no pool monopoly).
  JobResult Fine = Service.run(simpleJob("(+ 2 2)"));
  ASSERT_EQ(Fine.Status, JobStatus::Done);
  EXPECT_EQ(Fine.ResultText, "4");
}

TEST(ServiceBreaker, HalfOpenProbeCanCloseTheCircuit) {
  ServiceConfig Config;
  Config.Threads = 1;
  Config.Retry.MaxRetries = 0;
  Config.Breaker.FailureThreshold = 2;
  Config.Breaker.CooldownNanos = 50'000'000; // 50 ms
  ExecService Service(Config);

  // The breaker keys on (source, mode) — limits are not part of the
  // key, so the same program with a healthier budget is the probe.
  JobSpec Tight = simpleJob(DivergentLoop);
  Tight.Limits.MaxSteps = 100000;
  for (int I = 0; I != 2; ++I)
    ASSERT_EQ(Service.run(Tight).Status, JobStatus::Failed);
  EXPECT_EQ(Service.run(Tight).Status, JobStatus::Rejected);

  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  // Cooldown over: this submission is admitted as the half-open probe.
  // It still diverges, so use fuel, but mark the *program error* path:
  // a blame/trap-free completion closes the circuit. Use a program
  // variant? No: same key requires same source. A bounded run is
  // impossible for a divergent loop, so the probe fails and re-opens.
  JobResult Probe = Service.run(Tight);
  EXPECT_EQ(Probe.Status, JobStatus::Failed);
  EXPECT_EQ(Probe.Kind, ErrorKind::FuelExhausted);
  // Re-opened immediately (half-open failure), without needing a new
  // streak of FailureThreshold.
  EXPECT_EQ(Service.run(Tight).Status, JobStatus::Rejected);
}

TEST(ServiceBreaker, HalfOpenAdmitsExactlyOneProbeUnderRace) {
  // N threads race admit() on a half-open circuit; the single-probe
  // invariant must hold no matter the interleaving. Repeat the race to
  // give TSan and the scheduler room to find an ordering that breaks it.
  for (int Round = 0; Round != 20; ++Round) {
    CircuitBreaker B({.FailureThreshold = 1, .CooldownNanos = 2'000'000});
    const uint64_t Key = 7;
    ASSERT_TRUE(B.admit(Key));
    B.recordResourceFailure(Key); // opens
    std::this_thread::sleep_for(std::chrono::milliseconds(5)); // cooldown over

    constexpr int N = 16;
    std::atomic<int> Ready{0}, Admitted{0};
    std::atomic<bool> Go{false};
    std::vector<std::thread> Threads;
    for (int I = 0; I != N; ++I)
      Threads.emplace_back([&] {
        Ready.fetch_add(1);
        while (!Go.load(std::memory_order_acquire))
          ;
        if (B.admit(Key))
          Admitted.fetch_add(1);
      });
    while (Ready.load() != N)
      ;
    Go.store(true, std::memory_order_release);
    for (std::thread &T : Threads)
      T.join();
    ASSERT_EQ(Admitted.load(), 1) << "round " << Round;
    // The losers were counted as rejections; the probe's failure
    // re-opens for a fresh cooldown and nobody else slips in.
    EXPECT_EQ(B.rejections(), static_cast<uint64_t>(N - 1));
    B.recordResourceFailure(Key);
    EXPECT_FALSE(B.admit(Key));
  }
}

TEST(ServiceBreaker, WatchdogKilledProbeReopensCircuit) {
  // A half-open probe that the watchdog kills is a resource failure:
  // the circuit must re-open for a fresh cooldown, not close or leak
  // the probe slot.
  ServiceConfig Config;
  Config.Threads = 1;
  Config.Retry.MaxRetries = 0;
  Config.Breaker.FailureThreshold = 1;
  Config.Breaker.CooldownNanos = 50'000'000; // 50 ms
  ExecService Service(Config);

  JobSpec Wedged = simpleJob(DivergentLoop);
  Wedged.DeadlineNanos = 100 * 1000000ll; // watchdog, no in-band budget

  JobResult First = Service.run(Wedged);
  ASSERT_EQ(First.Status, JobStatus::Failed);
  ASSERT_EQ(First.Kind, ErrorKind::Cancelled);

  JobResult WhileOpen = Service.run(Wedged);
  ASSERT_EQ(WhileOpen.Status, JobStatus::Rejected);
  EXPECT_EQ(WhileOpen.Kind, ErrorKind::Overloaded);
  EXPECT_EQ(WhileOpen.Attempts, 0u);

  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  JobResult Probe = Service.run(Wedged); // admitted as the single probe
  ASSERT_EQ(Probe.Status, JobStatus::Failed);
  EXPECT_EQ(Probe.Kind, ErrorKind::Cancelled);
  EXPECT_EQ(Probe.Attempts, 1u);

  // Re-opened by the killed probe: rejected again without a new streak.
  JobResult AfterProbe = Service.run(Wedged);
  EXPECT_EQ(AfterProbe.Status, JobStatus::Rejected);
  EXPECT_GE(Service.stats().WatchdogKills, 2u);
}

//===----------------------------------------------------------------------===//
// Overload shedding and queue deadlines
//===----------------------------------------------------------------------===//

TEST(ServiceShed, QueueBoundShedsWithStructuredOverloaded) {
  ServiceConfig Config;
  Config.Threads = 1;
  Config.Retry.MaxRetries = 0;
  Config.MaxQueueDepth = 2;
  ExecService Service(Config);

  // Occupy the lone worker long enough to observe the full queue.
  JobSpec Busy = simpleJob(DivergentLoop, "busy");
  Busy.DeadlineNanos = 700 * 1000000ll;
  auto BusyF = Service.submit(std::move(Busy));
  // Let the worker dequeue it so the queue is empty again.
  auto Start = std::chrono::steady_clock::now();
  while (Service.queueDepth() != 0 &&
         std::chrono::steady_clock::now() - Start < std::chrono::seconds(5))
    std::this_thread::sleep_for(std::chrono::milliseconds(1));

  // Fill the queue to its bound...
  std::vector<std::future<JobResult>> Queued;
  for (int I = 0; I != 2; ++I)
    Queued.push_back(Service.submit(simpleJob("(+ 1 1)", "q")));
  // ...and everything beyond it sheds immediately, without running.
  for (int I = 0; I != 8; ++I) {
    JobResult R = Service.run(simpleJob("(+ 2 2)", "shed"));
    ASSERT_EQ(R.Status, JobStatus::Rejected) << I;
    EXPECT_EQ(R.Kind, ErrorKind::Overloaded);
    EXPECT_EQ(R.Attempts, 0u);
    EXPECT_NE(R.ErrorMessage.find("overloaded"), std::string::npos);
  }
  ServiceStats S = Service.stats();
  EXPECT_EQ(S.JobsShed, 8u);
  EXPECT_GE(S.PeakQueueDepth, 2u);
  // The queued jobs still complete once the worker frees up.
  EXPECT_EQ(BusyF.get().Kind, ErrorKind::Cancelled);
  for (auto &F : Queued)
    EXPECT_EQ(F.get().Status, JobStatus::Done);
}

TEST(ServiceShed, ExpiredQueueDeadlineFailsWithoutRunning) {
  ServiceConfig Config;
  Config.Threads = 1;
  Config.Retry.MaxRetries = 0;
  ExecService Service(Config);

  JobSpec Busy = simpleJob(DivergentLoop, "busy");
  Busy.DeadlineNanos = 500 * 1000000ll;
  auto BusyF = Service.submit(std::move(Busy));

  // This job's end-to-end deadline expires while it waits behind the
  // wedged job: it must come back Timeout with zero attempts.
  JobSpec Doomed = simpleJob("(+ 1 2)", "doomed");
  Doomed.QueueDeadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(50);
  JobResult R = Service.run(std::move(Doomed));
  ASSERT_EQ(R.Status, JobStatus::Failed);
  EXPECT_EQ(R.Kind, ErrorKind::Timeout);
  EXPECT_EQ(R.Attempts, 0u);
  EXPECT_NE(R.ErrorMessage.find("queue"), std::string::npos);
  EXPECT_EQ(Service.stats().DeadlineExpired, 1u);
  BusyF.get();
}

TEST(ServiceShed, QueueDeadlineClampsWatchdogForRunningJobs) {
  // A divergent job with a tight QueueDeadline but *no* per-attempt
  // deadline must still die: the clamp feeds the remaining time to the
  // watchdog.
  ServiceConfig Config;
  Config.Threads = 1;
  Config.Retry.MaxRetries = 0;
  ExecService Service(Config);
  JobSpec Spec = simpleJob(DivergentLoop);
  Spec.QueueDeadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(200);
  auto Start = std::chrono::steady_clock::now();
  JobResult R = Service.run(std::move(Spec));
  auto Elapsed = std::chrono::steady_clock::now() - Start;
  ASSERT_EQ(R.Status, JobStatus::Failed);
  // Cancelled when the clamped watchdog fired mid-run; Timeout when a
  // loaded machine delayed dequeue past the deadline. Either way the
  // job died from the queue deadline, bounded.
  EXPECT_TRUE(R.Kind == ErrorKind::Cancelled || R.Kind == ErrorKind::Timeout)
      << R.ErrorMessage;
  EXPECT_LT(Elapsed, std::chrono::seconds(5));
}

//===----------------------------------------------------------------------===//
// Error-path determinism (satellite): same program, same limits, same
// ErrorKind — across reruns on a reused engine and across pool threads.
//===----------------------------------------------------------------------===//

TEST(ServiceDeterminism, SameErrorKindAcross100RerunsOnReusedEngine) {
  ServiceConfig Config;
  Config.Threads = 1; // one engine, reused for every rerun
  Config.Retry.MaxRetries = 0;
  Config.Breaker.FailureThreshold = 0; // do not quarantine the reruns
  ExecService Service(Config);

  struct Case {
    const char *Source;
    ErrorKind Expected;
    RunLimits Limits;
  };
  RunLimits Fuel;
  Fuel.MaxSteps = 100000;
  RunLimits Heap;
  Heap.MaxHeapBytes = 1 << 20;
  Heap.MaxSteps = 100000000;
  RunLimits Depth;
  Depth.MaxFrames = 1000;
  const Case Cases[] = {
      {"(ann (ann #t Dyn) Int)", ErrorKind::Blame, {}},
      {"(/ 1 0)", ErrorKind::Trap, {}},
      {DivergentLoop, ErrorKind::FuelExhausted, Fuel},
      {HeapGrower, ErrorKind::OutOfMemory, Heap},
      {"(letrec ([f : (Int -> Int) (lambda ([n : Int]) : Int (+ 1 (f n)))])"
       "  (f 0))",
       ErrorKind::StackOverflow, Depth},
  };
  for (const Case &C : Cases) {
    for (int Rerun = 0; Rerun != 100; ++Rerun) {
      JobSpec Spec = simpleJob(C.Source);
      Spec.Limits = C.Limits;
      JobResult R = Service.run(std::move(Spec));
      ASSERT_EQ(R.Status, JobStatus::Failed) << C.Source;
      ASSERT_EQ(R.Kind, C.Expected)
          << C.Source << " rerun " << Rerun << ": " << R.ErrorMessage;
    }
  }
  // Every rerun after the first hit the compile cache.
  EXPECT_EQ(Service.stats().CacheMisses, 5u);
}

TEST(ServiceDeterminism, MixedJobSoupOn8ThreadsHasNoCrossJobInterference) {
  ServiceConfig Config;
  Config.Threads = 8;
  Config.Retry.MaxRetries = 0;
  Config.Breaker.FailureThreshold = 0; // outcomes must not depend on order
  ExecService Service(Config);

  struct Expect {
    JobStatus Status;
    ErrorKind Kind;
    std::string Result;
  };
  std::vector<std::future<JobResult>> Futures;
  std::vector<Expect> Expected;
  for (int Round = 0; Round != 25; ++Round) {
    { // good
      JobSpec S = simpleJob("(* " + std::to_string(Round) + " 2)");
      Futures.push_back(Service.submit(std::move(S)));
      Expected.push_back(
          {JobStatus::Done, ErrorKind::Trap, std::to_string(Round * 2)});
    }
    { // divergent, fuel-limited
      JobSpec S = simpleJob(DivergentLoop);
      S.Limits.MaxSteps = 50000;
      Futures.push_back(Service.submit(std::move(S)));
      Expected.push_back({JobStatus::Failed, ErrorKind::FuelExhausted, ""});
    }
    { // OOM
      JobSpec S = simpleJob(HeapGrower);
      S.Limits.MaxHeapBytes = 1 << 20;
      S.Limits.MaxSteps = 100000000;
      Futures.push_back(Service.submit(std::move(S)));
      Expected.push_back({JobStatus::Failed, ErrorKind::OutOfMemory, ""});
    }
    { // blame
      JobSpec S = simpleJob("(ann (ann #t Dyn) Int)");
      Futures.push_back(Service.submit(std::move(S)));
      Expected.push_back({JobStatus::Failed, ErrorKind::Blame, ""});
    }
  }
  for (size_t I = 0; I != Futures.size(); ++I) {
    JobResult R = Futures[I].get();
    ASSERT_EQ(R.Status, Expected[I].Status) << "job " << I;
    if (R.Status == JobStatus::Done)
      EXPECT_EQ(R.ResultText, Expected[I].Result) << "job " << I;
    else
      EXPECT_EQ(R.Kind, Expected[I].Kind)
          << "job " << I << ": " << R.ErrorMessage;
  }
}

//===----------------------------------------------------------------------===//
// Thread affinity
//===----------------------------------------------------------------------===//

TEST(ServiceAffinity, BindingTracksOwnership) {
  Grift G;
  EXPECT_TRUE(G.ownsCurrentThread()); // unbound: any thread may use it
  G.bindToCurrentThread();
  EXPECT_TRUE(G.ownsCurrentThread());
  bool OwnedElsewhere = true;
  std::thread([&] { OwnedElsewhere = G.ownsCurrentThread(); }).join();
  EXPECT_FALSE(OwnedElsewhere);
  G.unbindThread();
  std::thread([&] { OwnedElsewhere = G.ownsCurrentThread(); }).join();
  EXPECT_TRUE(OwnedElsewhere);
}

TEST(ServiceAffinity, FuelAndHeapObservablesAreReported) {
  // The service surfaces per-job consumption for griftd's result lines.
  ServiceConfig Config;
  Config.Threads = 1;
  ExecService Service(Config);
  JobSpec Spec = simpleJob(DivergentLoop);
  Spec.Limits.MaxSteps = 100000;
  JobResult R = Service.run(std::move(Spec));
  ASSERT_EQ(R.Status, JobStatus::Failed);
  EXPECT_GE(R.FuelUsed, 100000u - 1024u); // batched accounting
  EXPECT_GT(R.WallNanos, 0);
}

//===----------------------------------------------------------------------===//
// Coercion-arena epochs: long job streams with many distinct casts must
// not grow a slot's CoercionFactory (or its compile cache) without
// bound. The epoch reset drops both together once the arena passes the
// configured cap.
//===----------------------------------------------------------------------===//

namespace {

/// A job whose cast allocates coercions for a (Tuple ...) type whose
/// element kinds are the low 10 bits of \p J — 1024 distinct types, so
/// a stream of these keeps minting fresh coercion nodes.
JobSpec variedCastJob(int J) {
  std::string Lit = "(tuple", Ty = "(Tuple";
  for (int B = 0; B != 10; ++B) {
    bool Bit = (J >> B) & 1;
    Lit += Bit ? " #t" : " 1";
    Ty += Bit ? " Bool" : " Int";
  }
  Lit += ")";
  Ty += ")";
  return simpleJob("(tuple-proj (ann (ann " + Lit + " Dyn) " + Ty + ") 0)",
                   "j" + std::to_string(J));
}

} // namespace

TEST(ServiceEpoch, CoercionArenaStaysBoundedAcrossManyVariedJobs) {
  constexpr size_t Cap = 512;
  EnginePool Pool(1);
  EnginePool::Slot &S = Pool.slot(0);
  uint64_t Resets = 0;
  for (int J = 0; J != 1200; ++J) {
    JobSpec Spec = variedCastJob(J);
    bool Hit = false;
    const EnginePool::CacheEntry &Entry = S.compileCached(Spec, Hit);
    ASSERT_TRUE(Entry.Exe.has_value()) << Entry.Errors;
    RunResult R = Entry.Exe->run();
    ASSERT_TRUE(R.OK) << R.Error.str() << "\njob " << J;
    EXPECT_EQ(R.ResultText, (J & 1) ? "#t" : "1");
    if (S.maybeResetEpoch(Cap))
      ++Resets;
    // The between-jobs invariant: a reset brings the arena back to just
    // ι, so right after maybeResetEpoch it can never exceed the cap.
    ASSERT_LE(S.Engine.coercions().allocatedNodes(), Cap) << "job " << J;
  }
  EXPECT_GT(Resets, 0u);
  EXPECT_EQ(S.EpochResets.load(), Resets);
}

TEST(ServiceEpoch, ResetsSurfaceInStatsAndResubmittedJobsStillRun) {
  ServiceConfig Config;
  Config.Threads = 2;
  Config.MaxCoercionNodes = 256;
  ExecService Service(Config);
  // Two passes over the same job set: epoch resets in between drop the
  // compile caches, so the second pass recompiles — and must still be
  // correct.
  for (int Pass = 0; Pass != 2; ++Pass)
    for (int J = 0; J != 300; ++J) {
      JobResult R = Service.run(variedCastJob(J));
      ASSERT_EQ(R.Status, JobStatus::Done) << R.ErrorMessage;
      EXPECT_EQ(R.ResultText, (J & 1) ? "#t" : "1");
    }
  EXPECT_GT(Service.stats().EpochResets, 0u);
}

TEST(ServiceEpoch, ZeroCapDisablesResets) {
  ServiceConfig Config;
  Config.Threads = 1;
  Config.MaxCoercionNodes = 0;
  ExecService Service(Config);
  for (int J = 0; J != 50; ++J) {
    JobResult R = Service.run(variedCastJob(J));
    ASSERT_EQ(R.Status, JobStatus::Done) << R.ErrorMessage;
  }
  EXPECT_EQ(Service.stats().EpochResets, 0u);
}
