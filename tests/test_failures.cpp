//===----------------------------------------------------------------------===//
///
/// \file
/// Failure injection and edge cases: runtime traps (division, bounds,
/// input exhaustion), blame from deep structural positions, shadowing
/// and scoping corners, and resource-related behaviour. Errors must be
/// *reported*, never crash, and must be the right kind (trap vs blame).
///
//===----------------------------------------------------------------------===//
#include "grift/Grift.h"
#include "refinterp/RefInterp.h"

#include <gtest/gtest.h>

using namespace grift;

namespace {

class FailureTest : public ::testing::Test {
protected:
  Grift G;

  RunResult run(std::string_view Source, CastMode Mode = CastMode::Coercions,
                std::string Input = "") {
    std::string Errors;
    auto Exe = G.compile(Source, Mode, Errors);
    EXPECT_TRUE(Exe.has_value()) << Errors;
    if (!Exe) {
      RunResult R;
      R.Error = {ErrorKind::Trap, "", "compile failed: " + Errors};
      return R;
    }
    return Exe->run(std::move(Input));
  }

  /// Expects a trap (not blame) whose message contains \p Needle.
  void expectTrap(std::string_view Source, std::string_view Needle,
                  std::string Input = "") {
    for (CastMode Mode : {CastMode::Coercions, CastMode::TypeBased,
                          CastMode::Monotonic}) {
      RunResult R = run(Source, Mode, Input);
      ASSERT_FALSE(R.OK) << Source;
      EXPECT_FALSE(R.Error.isBlame()) << R.Error.str();
      EXPECT_NE(R.Error.Message.find(Needle), std::string::npos)
          << R.Error.str();
    }
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Runtime traps
//===----------------------------------------------------------------------===//

TEST_F(FailureTest, DivisionByZeroTraps) {
  expectTrap("(/ 1 0)", "division by zero");
  expectTrap("(% 1 0)", "modulo by zero");
  expectTrap("(let ([n 0]) (/ 10 n))", "division by zero");
}

TEST_F(FailureTest, VectorBoundsTrap) {
  expectTrap("(vector-ref (make-vector 3 0) 3)", "out of bounds");
  expectTrap("(vector-ref (make-vector 3 0) -1)", "out of bounds");
  expectTrap("(vector-set! (make-vector 3 0) 99 1)", "out of bounds");
  expectTrap("(make-vector -1 0)", "invalid vector size");
}

TEST_F(FailureTest, BoundsThroughDynViewStillTrap) {
  expectTrap("((lambda (v) (vector-ref v 5)) (make-vector 2 0))",
             "out of bounds");
}

TEST_F(FailureTest, BoundsThroughProxiedVectorTrap) {
  const char *Source = "(let ([v : (Vect Int) (make-vector 2 0)])"
                       "  (let ([w : (Vect Dyn) v]) (vector-ref w 7)))";
  expectTrap(Source, "out of bounds");
}

TEST_F(FailureTest, ReadIntExhaustionTraps) {
  expectTrap("(+ (read-int) (read-int))", "no integer", "41");
  expectTrap("(read-char)", "end of input", "");
}

TEST_F(FailureTest, FloatEdgeCasesDoNotTrap) {
  // IEEE semantics, not traps.
  RunResult R = run("(fl/ 1.0 0.0)");
  ASSERT_TRUE(R.OK);
  EXPECT_EQ(R.ResultText, "+inf.0");
  RunResult R2 = run("(fl/ 0.0 0.0)");
  ASSERT_TRUE(R2.OK);
  EXPECT_EQ(R2.ResultText, "+nan.0");
  RunResult R3 = run("(flsqrt -1.0)");
  ASSERT_TRUE(R3.OK);
  EXPECT_EQ(R3.ResultText, "+nan.0");
}

//===----------------------------------------------------------------------===//
// Blame from deep positions
//===----------------------------------------------------------------------===//

TEST_F(FailureTest, BlameThroughNestedTuples) {
  const char *Source =
      "(let ([p : (Tuple (Tuple Int Dyn) Int) (tuple (tuple 1 #t) 2)])"
      "  (ann (tuple-proj (tuple-proj p 0) 1) Int))";
  for (CastMode Mode : {CastMode::Coercions, CastMode::TypeBased}) {
    RunResult R = run(Source, Mode);
    ASSERT_FALSE(R.OK);
    EXPECT_TRUE(R.Error.isBlame());
  }
}

TEST_F(FailureTest, BlameThroughFunctionResult) {
  // The lie is in the *result* side of the cast.
  const char *Source =
      "(define f : (Int -> Dyn) (lambda ([x : Int]) : Dyn (ann #t Dyn)))"
      "(define g : (Int -> Int) f)"
      "(g 1)";
  for (CastMode Mode : {CastMode::Coercions, CastMode::TypeBased,
                        CastMode::Monotonic}) {
    RunResult R = run(Source, Mode);
    ASSERT_FALSE(R.OK) << castModeName(Mode);
    EXPECT_TRUE(R.Error.isBlame());
  }
}

TEST_F(FailureTest, BlameThroughBoxReadAfterManyCasts) {
  // The box bounces through Dyn views; the bad write is caught with
  // blame, in every mode, no matter how many casts intervened.
  const char *Source =
      "(define b : (Ref Int) (box 1))"
      "(define d1 : (Ref Dyn) b)"
      "(define d2 : Dyn d1)"
      "(define d3 : (Ref Dyn) (ann d2 (Ref Dyn)))"
      "(box-set! d3 (ann #f Dyn))";
  for (CastMode Mode : {CastMode::Coercions, CastMode::TypeBased,
                        CastMode::Monotonic}) {
    RunResult R = run(Source, Mode);
    ASSERT_FALSE(R.OK) << castModeName(Mode);
    EXPECT_TRUE(R.Error.isBlame()) << R.Error.str();
  }
}

TEST_F(FailureTest, SuccessfulDeepFlowsStillWork) {
  const char *Source =
      "(define b : (Ref Int) (box 1))"
      "(define d1 : (Ref Dyn) b)"
      "(define d2 : Dyn d1)"
      "(define d3 : (Ref Dyn) (ann d2 (Ref Dyn)))"
      "(begin (box-set! d3 (ann 42 Dyn)) (unbox b))";
  for (CastMode Mode : {CastMode::Coercions, CastMode::TypeBased,
                        CastMode::Monotonic}) {
    RunResult R = run(Source, Mode);
    ASSERT_TRUE(R.OK) << castModeName(Mode) << ": " << R.Error.str();
    EXPECT_EQ(R.ResultText, "42");
  }
}

//===----------------------------------------------------------------------===//
// Blame labels, pinned. The lazy-D contract is that the *label* — the
// 1-based line:col of the cast the type checker charged — is part of
// the observable behaviour, identical across the reference interpreter
// and every VM cast strategy even though the prose of the message
// differs per runtime. These tests pin the exact label text for the
// scenarios above so a refactor that shifts attribution (to the value's
// use site, to an inner cast, off by a column) fails loudly.
//===----------------------------------------------------------------------===//

namespace {

/// Per-engine blame expectation; monotonic references legitimately
/// charge the write site rather than the reference-view cast, so it
/// gets its own slot.
struct BlameLabels {
  std::string RefAndCoercions; ///< refinterp, coercions, type-based
  std::string Monotonic;
};

} // namespace

class BlameLabelTest : public FailureTest {
protected:
  void expectLabels(std::string_view Source, const BlameLabels &Expected) {
    std::string Errors;
    auto Ast = G.parse(Source, Errors);
    ASSERT_TRUE(Ast.has_value()) << Errors;
    auto Core = G.check(*Ast, Errors);
    ASSERT_TRUE(Core.has_value()) << Errors;

    refinterp::RefResult Ref =
        refinterp::interpret(G.types(), G.coercions(), *Core);
    ASSERT_FALSE(Ref.OK) << Source;
    EXPECT_EQ(Ref.Kind, ErrorKind::Blame) << Ref.Message;
    EXPECT_EQ(Ref.Label, Expected.RefAndCoercions) << Ref.Message;

    for (CastMode Mode : {CastMode::Coercions, CastMode::TypeBased,
                          CastMode::Monotonic}) {
      RunResult R = run(Source, Mode);
      ASSERT_FALSE(R.OK) << castModeName(Mode) << "\n" << Source;
      EXPECT_EQ(R.Error.Kind, ErrorKind::Blame)
          << castModeName(Mode) << ": " << R.Error.str();
      const std::string &Want = Mode == CastMode::Monotonic
                                    ? Expected.Monotonic
                                    : Expected.RefAndCoercions;
      EXPECT_EQ(R.Error.Label, Want)
          << castModeName(Mode) << ": " << R.Error.str();
    }
  }
};

TEST_F(BlameLabelTest, AscriptionBlamesTheOuterAnn) {
  // The label is the opening paren of the *outer* (ann ...), even when
  // the annotation itself sits on the next line.
  expectLabels("(ann (ann #t Dyn)\n"
               "     Int)",
               {"1:1", "1:1"});
}

TEST_F(BlameLabelTest, NestedTupleProjectionBlamesTheAscription) {
  // The lie travels through two tuple layers; the charge lands on the
  // ascription that demanded Int, not on either projection.
  expectLabels(
      "(let ([p : (Tuple (Tuple Int Dyn) Int) (tuple (tuple 1 #t) 2)])\n"
      "  (ann (tuple-proj (tuple-proj p 0) 1) Int))",
      {"2:3", "2:3"});
}

TEST_F(BlameLabelTest, FunctionResultBlamesTheTighteningDefine) {
  // f honestly returns Dyn; the define that retyped it (Int -> Int)
  // made the promise, so its location is charged — lazily, only when
  // the call actually yields a non-Int.
  expectLabels(
      "(define f : (Int -> Dyn) (lambda ([x : Int]) : Dyn (ann #t Dyn)))\n"
      "(define g : (Int -> Int) f)\n"
      "(g 1)",
      {"2:1", "2:1"});
}

TEST_F(BlameLabelTest, ProxiedBoxWriteSplitsByStrategy) {
  // Guarded references (refinterp, coercions, type-based) charge the
  // (Ref Dyn) view that wrapped the Int box — line 2. The monotonic
  // strategy has no proxy to charge: the heap cell itself holds the
  // strongest type, so the offending write — line 5 — is blamed. Both
  // labels are pinned; a strategy drifting to any third site fails.
  expectLabels("(define b : (Ref Int) (box 1))\n"
               "(define d1 : (Ref Dyn) b)\n"
               "(define d2 : Dyn d1)\n"
               "(define d3 : (Ref Dyn) (ann d2 (Ref Dyn)))\n"
               "(box-set! d3 (ann #f Dyn))",
               {"2:1", "5:1"});
}

//===----------------------------------------------------------------------===//
// Scoping and shadowing corners
//===----------------------------------------------------------------------===//

TEST_F(FailureTest, ShadowingResolvesInnermost) {
  RunResult R = run("(let ([x 1])"
                    "  (let ([x 2])"
                    "    (+ x (let ([x 30]) x))))");
  ASSERT_TRUE(R.OK);
  EXPECT_EQ(R.ResultText, "32");
}

TEST_F(FailureTest, ParameterShadowsGlobal) {
  RunResult R = run("(define x : Int 100)"
                    "(define (f [x : Int]) : Int (+ x 1))"
                    "(f 1)");
  ASSERT_TRUE(R.OK);
  EXPECT_EQ(R.ResultText, "2");
}

TEST_F(FailureTest, ClosureCapturesShadowedBinding) {
  RunResult R = run("(let ([x 1])"
                    "  (let ([f (lambda () x)])"
                    "    (let ([x 99]) (f))))");
  ASSERT_TRUE(R.OK);
  EXPECT_EQ(R.ResultText, "1");
}

TEST_F(FailureTest, RepeatVariableScopedToBody) {
  // The loop index does not leak.
  std::string Errors;
  auto Exe = G.compile("(begin (repeat (i 0 3) ()) i)",
                       CastMode::Coercions, Errors);
  EXPECT_FALSE(Exe.has_value()); // `i` unbound outside
}

TEST_F(FailureTest, LetrecSiblingCapturesWork) {
  RunResult R = run(
      "(letrec ([even? : (Int -> Bool)"
      "           (lambda ([n : Int]) : Bool (if (= n 0) #t (odd? (- n 1))))]"
      "         [odd? : (Int -> Bool)"
      "           (lambda ([n : Int]) : Bool (if (= n 0) #f (even? (- n 1))))])"
      "  (odd? 77))");
  ASSERT_TRUE(R.OK);
  EXPECT_EQ(R.ResultText, "#t");
}

//===----------------------------------------------------------------------===//
// Numeric representation corners
//===----------------------------------------------------------------------===//

TEST_F(FailureTest, FortyEightBitFixnumsSurvive) {
  // Values at the NaN-boxed 48-bit fixnum boundary round-trip through
  // Dyn; literals past it are a parse error, not a silent truncation.
  RunResult R = run("(ann (ann 140737488355327 Dyn) Int)");
  ASSERT_TRUE(R.OK);
  EXPECT_EQ(R.ResultText, "140737488355327"); // 2^47 - 1
  RunResult R2 = run("(ann (ann -140737488355328 Dyn) Int)");
  ASSERT_TRUE(R2.OK);
  EXPECT_EQ(R2.ResultText, "-140737488355328"); // -2^47
  Grift G;
  std::string Errors;
  EXPECT_FALSE(
      G.compile("(+ 1152921504606846975 0)", CastMode::Coercions, Errors)
          .has_value());
  EXPECT_NE(Errors.find("fixnum range"), std::string::npos) << Errors;
}

TEST_F(FailureTest, NegativeZeroAndPrecisionSurvive) {
  RunResult R = run("(fl* -1.0 0.0)");
  ASSERT_TRUE(R.OK);
  EXPECT_EQ(R.ResultText, "-0.0");
  RunResult R2 = run("(ann (ann 0.1 Dyn) Float)");
  ASSERT_TRUE(R2.OK);
  EXPECT_EQ(R2.ResultText, "0.1");
}

TEST_F(FailureTest, CharRoundTripsThroughDyn) {
  RunResult R = run("(char->int (ann (ann #\\z Dyn) Char))");
  ASSERT_TRUE(R.OK);
  EXPECT_EQ(R.ResultText, "122");
}

//===----------------------------------------------------------------------===//
// Resource governance: every ErrorKind is reachable, reported (never a
// crash), and leaves the Grift instance reusable.
//===----------------------------------------------------------------------===//

namespace {

/// A divergent tail loop: runs forever in constant space on the VM.
const char *DivergentLoop = "(letrec ([loop (lambda () (loop))]) (loop))";

/// Unbounded non-tail recursion: each call pushes a real frame.
const char *DeepRecursion =
    "(letrec ([f : (Int -> Int)"
    "           (lambda ([n : Int]) : Int (+ 1 (f n)))])"
    "  (f 0))";

/// A tail loop that retains an ever-growing chain of boxes, so live
/// heap grows without bound while the stack stays flat.
const char *HeapGrower =
    "(letrec ([f : (Int Dyn -> Int)"
    "           (lambda ([n : Int] [l : Dyn]) : Int"
    "             (f (+ n 1) (ann (box l) Dyn)))])"
    "  (f 0 (ann 0 Dyn)))";

} // namespace

class ResourceLimitTest : public FailureTest {
protected:
  RunResult runLimited(std::string_view Source, const RunLimits &Limits,
                       FaultInjector *Injector = nullptr,
                       CastMode Mode = CastMode::Coercions) {
    std::string Errors;
    auto Exe = G.compile(Source, Mode, Errors);
    EXPECT_TRUE(Exe.has_value()) << Errors;
    if (!Exe) {
      RunResult R;
      R.Error = {ErrorKind::Trap, "", "compile failed: " + Errors};
      return R;
    }
    return Exe->run("", Limits, Injector);
  }

  /// The same Grift must compile and run a fresh program after any
  /// failure — resource exhaustion must not poison shared state.
  void expectStillUsable() {
    RunResult R = run("(+ 1 2)");
    ASSERT_TRUE(R.OK) << R.Error.str();
    EXPECT_EQ(R.ResultText, "3");
  }
};

TEST_F(ResourceLimitTest, BlameKindIsBlame) {
  RunResult R = run("(ann (ann #t Dyn) Int)");
  ASSERT_FALSE(R.OK);
  EXPECT_EQ(R.Error.Kind, ErrorKind::Blame);
  EXPECT_TRUE(R.Error.isBlame());
  EXPECT_FALSE(R.Error.isResourceExhaustion());
  expectStillUsable();
}

TEST_F(ResourceLimitTest, TrapKindIsTrap) {
  RunResult R = run("(/ 1 0)");
  ASSERT_FALSE(R.OK);
  EXPECT_EQ(R.Error.Kind, ErrorKind::Trap);
  EXPECT_FALSE(R.Error.isResourceExhaustion());
  expectStillUsable();
}

TEST_F(ResourceLimitTest, FuelExhaustedOnDivergentLoop) {
  RunLimits Limits;
  Limits.MaxSteps = 200000;
  for (CastMode Mode : {CastMode::Coercions, CastMode::TypeBased}) {
    RunResult R = runLimited(DivergentLoop, Limits, nullptr, Mode);
    ASSERT_FALSE(R.OK) << castModeName(Mode);
    EXPECT_EQ(R.Error.Kind, ErrorKind::FuelExhausted) << R.Error.str();
    EXPECT_TRUE(R.Error.isResourceExhaustion());
  }
  expectStillUsable();
}

TEST_F(ResourceLimitTest, StackOverflowOnDeepRecursion) {
  RunLimits Limits;
  Limits.MaxFrames = 1000;
  RunResult R = runLimited(DeepRecursion, Limits);
  ASSERT_FALSE(R.OK);
  EXPECT_EQ(R.Error.Kind, ErrorKind::StackOverflow) << R.Error.str();
  expectStillUsable();
}

TEST_F(ResourceLimitTest, OutOfMemoryOnGrowingHeap) {
  RunLimits Limits;
  Limits.MaxHeapBytes = 1 << 20; // 1 MiB of live data
  Limits.MaxSteps = 100000000;   // backstop so a bug can't hang the test
  RunResult R = runLimited(HeapGrower, Limits);
  ASSERT_FALSE(R.OK);
  EXPECT_EQ(R.Error.Kind, ErrorKind::OutOfMemory) << R.Error.str();
  expectStillUsable();
}

TEST_F(ResourceLimitTest, OutOfMemoryOnHugeSingleAllocation) {
  RunLimits Limits;
  Limits.MaxHeapBytes = 1 << 20;
  RunResult R = runLimited("(vector-ref (make-vector 100000000 0) 0)", Limits);
  ASSERT_FALSE(R.OK);
  EXPECT_EQ(R.Error.Kind, ErrorKind::OutOfMemory) << R.Error.str();
  expectStillUsable();
}

TEST_F(ResourceLimitTest, TimeoutOnDivergentLoop) {
  RunLimits Limits;
  Limits.MaxWallNanos = 50 * 1000000ll; // 50 ms
  RunResult R = runLimited(DivergentLoop, Limits);
  ASSERT_FALSE(R.OK);
  EXPECT_EQ(R.Error.Kind, ErrorKind::Timeout) << R.Error.str();
  expectStillUsable();
}

TEST_F(ResourceLimitTest, InjectedAllocationFailureIsOutOfMemory) {
  FaultInjector Injector;
  Injector.FailAllocAt = 3;
  RunResult R = runLimited("(box (box (box (box 1))))", RunLimits{}, &Injector);
  ASSERT_FALSE(R.OK);
  EXPECT_EQ(R.Error.Kind, ErrorKind::OutOfMemory) << R.Error.str();
  EXPECT_NE(R.Error.Message.find("injected"), std::string::npos)
      << R.Error.str();
  expectStillUsable();
}

TEST_F(ResourceLimitTest, LimitsDoNotAffectCompletingPrograms) {
  RunLimits Limits;
  Limits.MaxSteps = 10000000;
  Limits.MaxHeapBytes = 64 << 20;
  Limits.MaxFrames = 100000;
  Limits.MaxWallNanos = 10ll * 1000000000;
  RunResult R = runLimited("(repeat (i 0 1000) (acc : Int 0) (+ acc i))",
                           Limits);
  ASSERT_TRUE(R.OK) << R.Error.str();
  EXPECT_EQ(R.ResultText, "499500");
}

//===----------------------------------------------------------------------===//
// Output determinism across modes under GC pressure
//===----------------------------------------------------------------------===//

TEST_F(FailureTest, AllocationHeavyProgramAgreesAcrossModes) {
  const char *Source =
      "(define (mk [i : Int]) : (Tuple Int (Ref Int))"
      "  (tuple i (box (* i i))))"
      "(repeat (i 0 50000) (acc : Int 0)"
      "  (+ acc (unbox (tuple-proj (mk i) 1))))";
  std::string Expected;
  for (CastMode Mode : {CastMode::Static, CastMode::Coercions,
                        CastMode::TypeBased, CastMode::Monotonic}) {
    RunResult R = run(Source, Mode);
    ASSERT_TRUE(R.OK) << castModeName(Mode) << ": " << R.Error.str();
    if (Expected.empty())
      Expected = R.ResultText;
    EXPECT_EQ(R.ResultText, Expected) << castModeName(Mode);
  }
}
