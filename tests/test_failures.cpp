//===----------------------------------------------------------------------===//
///
/// \file
/// Failure injection and edge cases: runtime traps (division, bounds,
/// input exhaustion), blame from deep structural positions, shadowing
/// and scoping corners, and resource-related behaviour. Errors must be
/// *reported*, never crash, and must be the right kind (trap vs blame).
///
//===----------------------------------------------------------------------===//
#include "grift/Grift.h"

#include <gtest/gtest.h>

using namespace grift;

namespace {

class FailureTest : public ::testing::Test {
protected:
  Grift G;

  RunResult run(std::string_view Source, CastMode Mode = CastMode::Coercions,
                std::string Input = "") {
    std::string Errors;
    auto Exe = G.compile(Source, Mode, Errors);
    EXPECT_TRUE(Exe.has_value()) << Errors;
    if (!Exe) {
      RunResult R;
      R.Error = {false, "", "compile failed: " + Errors};
      return R;
    }
    return Exe->run(std::move(Input));
  }

  /// Expects a trap (not blame) whose message contains \p Needle.
  void expectTrap(std::string_view Source, std::string_view Needle,
                  std::string Input = "") {
    for (CastMode Mode : {CastMode::Coercions, CastMode::TypeBased,
                          CastMode::Monotonic}) {
      RunResult R = run(Source, Mode, Input);
      ASSERT_FALSE(R.OK) << Source;
      EXPECT_FALSE(R.Error.IsBlame) << R.Error.str();
      EXPECT_NE(R.Error.Message.find(Needle), std::string::npos)
          << R.Error.str();
    }
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Runtime traps
//===----------------------------------------------------------------------===//

TEST_F(FailureTest, DivisionByZeroTraps) {
  expectTrap("(/ 1 0)", "division by zero");
  expectTrap("(% 1 0)", "modulo by zero");
  expectTrap("(let ([n 0]) (/ 10 n))", "division by zero");
}

TEST_F(FailureTest, VectorBoundsTrap) {
  expectTrap("(vector-ref (make-vector 3 0) 3)", "out of bounds");
  expectTrap("(vector-ref (make-vector 3 0) -1)", "out of bounds");
  expectTrap("(vector-set! (make-vector 3 0) 99 1)", "out of bounds");
  expectTrap("(make-vector -1 0)", "invalid vector size");
}

TEST_F(FailureTest, BoundsThroughDynViewStillTrap) {
  expectTrap("((lambda (v) (vector-ref v 5)) (make-vector 2 0))",
             "out of bounds");
}

TEST_F(FailureTest, BoundsThroughProxiedVectorTrap) {
  const char *Source = "(let ([v : (Vect Int) (make-vector 2 0)])"
                       "  (let ([w : (Vect Dyn) v]) (vector-ref w 7)))";
  expectTrap(Source, "out of bounds");
}

TEST_F(FailureTest, ReadIntExhaustionTraps) {
  expectTrap("(+ (read-int) (read-int))", "no integer", "41");
  expectTrap("(read-char)", "end of input", "");
}

TEST_F(FailureTest, FloatEdgeCasesDoNotTrap) {
  // IEEE semantics, not traps.
  RunResult R = run("(fl/ 1.0 0.0)");
  ASSERT_TRUE(R.OK);
  EXPECT_EQ(R.ResultText, "+inf.0");
  RunResult R2 = run("(fl/ 0.0 0.0)");
  ASSERT_TRUE(R2.OK);
  EXPECT_EQ(R2.ResultText, "+nan.0");
  RunResult R3 = run("(flsqrt -1.0)");
  ASSERT_TRUE(R3.OK);
  EXPECT_EQ(R3.ResultText, "+nan.0");
}

//===----------------------------------------------------------------------===//
// Blame from deep positions
//===----------------------------------------------------------------------===//

TEST_F(FailureTest, BlameThroughNestedTuples) {
  const char *Source =
      "(let ([p : (Tuple (Tuple Int Dyn) Int) (tuple (tuple 1 #t) 2)])"
      "  (ann (tuple-proj (tuple-proj p 0) 1) Int))";
  for (CastMode Mode : {CastMode::Coercions, CastMode::TypeBased}) {
    RunResult R = run(Source, Mode);
    ASSERT_FALSE(R.OK);
    EXPECT_TRUE(R.Error.IsBlame);
  }
}

TEST_F(FailureTest, BlameThroughFunctionResult) {
  // The lie is in the *result* side of the cast.
  const char *Source =
      "(define f : (Int -> Dyn) (lambda ([x : Int]) : Dyn (ann #t Dyn)))"
      "(define g : (Int -> Int) f)"
      "(g 1)";
  for (CastMode Mode : {CastMode::Coercions, CastMode::TypeBased,
                        CastMode::Monotonic}) {
    RunResult R = run(Source, Mode);
    ASSERT_FALSE(R.OK) << castModeName(Mode);
    EXPECT_TRUE(R.Error.IsBlame);
  }
}

TEST_F(FailureTest, BlameThroughBoxReadAfterManyCasts) {
  // The box bounces through Dyn views; the bad write is caught with
  // blame, in every mode, no matter how many casts intervened.
  const char *Source =
      "(define b : (Ref Int) (box 1))"
      "(define d1 : (Ref Dyn) b)"
      "(define d2 : Dyn d1)"
      "(define d3 : (Ref Dyn) (ann d2 (Ref Dyn)))"
      "(box-set! d3 (ann #f Dyn))";
  for (CastMode Mode : {CastMode::Coercions, CastMode::TypeBased,
                        CastMode::Monotonic}) {
    RunResult R = run(Source, Mode);
    ASSERT_FALSE(R.OK) << castModeName(Mode);
    EXPECT_TRUE(R.Error.IsBlame) << R.Error.str();
  }
}

TEST_F(FailureTest, SuccessfulDeepFlowsStillWork) {
  const char *Source =
      "(define b : (Ref Int) (box 1))"
      "(define d1 : (Ref Dyn) b)"
      "(define d2 : Dyn d1)"
      "(define d3 : (Ref Dyn) (ann d2 (Ref Dyn)))"
      "(begin (box-set! d3 (ann 42 Dyn)) (unbox b))";
  for (CastMode Mode : {CastMode::Coercions, CastMode::TypeBased,
                        CastMode::Monotonic}) {
    RunResult R = run(Source, Mode);
    ASSERT_TRUE(R.OK) << castModeName(Mode) << ": " << R.Error.str();
    EXPECT_EQ(R.ResultText, "42");
  }
}

//===----------------------------------------------------------------------===//
// Scoping and shadowing corners
//===----------------------------------------------------------------------===//

TEST_F(FailureTest, ShadowingResolvesInnermost) {
  RunResult R = run("(let ([x 1])"
                    "  (let ([x 2])"
                    "    (+ x (let ([x 30]) x))))");
  ASSERT_TRUE(R.OK);
  EXPECT_EQ(R.ResultText, "32");
}

TEST_F(FailureTest, ParameterShadowsGlobal) {
  RunResult R = run("(define x : Int 100)"
                    "(define (f [x : Int]) : Int (+ x 1))"
                    "(f 1)");
  ASSERT_TRUE(R.OK);
  EXPECT_EQ(R.ResultText, "2");
}

TEST_F(FailureTest, ClosureCapturesShadowedBinding) {
  RunResult R = run("(let ([x 1])"
                    "  (let ([f (lambda () x)])"
                    "    (let ([x 99]) (f))))");
  ASSERT_TRUE(R.OK);
  EXPECT_EQ(R.ResultText, "1");
}

TEST_F(FailureTest, RepeatVariableScopedToBody) {
  // The loop index does not leak.
  std::string Errors;
  auto Exe = G.compile("(begin (repeat (i 0 3) ()) i)",
                       CastMode::Coercions, Errors);
  EXPECT_FALSE(Exe.has_value()); // `i` unbound outside
}

TEST_F(FailureTest, LetrecSiblingCapturesWork) {
  RunResult R = run(
      "(letrec ([even? : (Int -> Bool)"
      "           (lambda ([n : Int]) : Bool (if (= n 0) #t (odd? (- n 1))))]"
      "         [odd? : (Int -> Bool)"
      "           (lambda ([n : Int]) : Bool (if (= n 0) #f (even? (- n 1))))])"
      "  (odd? 77))");
  ASSERT_TRUE(R.OK);
  EXPECT_EQ(R.ResultText, "#t");
}

//===----------------------------------------------------------------------===//
// Numeric representation corners
//===----------------------------------------------------------------------===//

TEST_F(FailureTest, SixtyOneBitFixnumsSurvive) {
  // Values near the 61-bit boundary round-trip through Dyn.
  RunResult R = run("(ann (ann 1152921504606846975 Dyn) Int)");
  ASSERT_TRUE(R.OK);
  EXPECT_EQ(R.ResultText, "1152921504606846975"); // 2^60 - 1
  RunResult R2 = run("(ann (ann -1152921504606846976 Dyn) Int)");
  ASSERT_TRUE(R2.OK);
  EXPECT_EQ(R2.ResultText, "-1152921504606846976"); // -2^60
}

TEST_F(FailureTest, NegativeZeroAndPrecisionSurvive) {
  RunResult R = run("(fl* -1.0 0.0)");
  ASSERT_TRUE(R.OK);
  EXPECT_EQ(R.ResultText, "-0.0");
  RunResult R2 = run("(ann (ann 0.1 Dyn) Float)");
  ASSERT_TRUE(R2.OK);
  EXPECT_EQ(R2.ResultText, "0.1");
}

TEST_F(FailureTest, CharRoundTripsThroughDyn) {
  RunResult R = run("(char->int (ann (ann #\\z Dyn) Char))");
  ASSERT_TRUE(R.OK);
  EXPECT_EQ(R.ResultText, "122");
}

//===----------------------------------------------------------------------===//
// Output determinism across modes under GC pressure
//===----------------------------------------------------------------------===//

TEST_F(FailureTest, AllocationHeavyProgramAgreesAcrossModes) {
  const char *Source =
      "(define (mk [i : Int]) : (Tuple Int (Ref Int))"
      "  (tuple i (box (* i i))))"
      "(repeat (i 0 50000) (acc : Int 0)"
      "  (+ acc (unbox (tuple-proj (mk i) 1))))";
  std::string Expected;
  for (CastMode Mode : {CastMode::Static, CastMode::Coercions,
                        CastMode::TypeBased, CastMode::Monotonic}) {
    RunResult R = run(Source, Mode);
    ASSERT_TRUE(R.OK) << castModeName(Mode) << ": " << R.Error.str();
    if (Expected.empty())
      Expected = R.ResultText;
    EXPECT_EQ(R.ResultText, Expected) << castModeName(Mode);
  }
}
