//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the support module: diagnostics, string utilities, RNG.
///
//===----------------------------------------------------------------------===//
#include "support/Diagnostics.h"
#include "support/RNG.h"
#include "support/StringUtil.h"

#include <gtest/gtest.h>

using namespace grift;

TEST(SourceLoc, DefaultIsInvalid) {
  SourceLoc Loc;
  EXPECT_FALSE(Loc.isValid());
  EXPECT_EQ(Loc.str(), "?");
}

TEST(SourceLoc, Formats) {
  SourceLoc Loc(3, 14);
  EXPECT_TRUE(Loc.isValid());
  EXPECT_EQ(Loc.str(), "3:14");
}

TEST(Diagnostics, CountsErrorsOnly) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(Diags.hasErrors());
  Diags.warning(SourceLoc(1, 1), "w");
  Diags.note(SourceLoc(1, 2), "n");
  EXPECT_FALSE(Diags.hasErrors());
  Diags.error(SourceLoc(2, 1), "e");
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_EQ(Diags.errorCount(), 1u);
  EXPECT_EQ(Diags.diagnostics().size(), 3u);
}

TEST(Diagnostics, RendersSeverityAndLocation) {
  DiagnosticEngine Diags;
  Diags.error(SourceLoc(7, 2), "bad type");
  EXPECT_EQ(Diags.diagnostics()[0].str(), "error: 7:2: bad type");
}

TEST(Diagnostics, ClearResets) {
  DiagnosticEngine Diags;
  Diags.error(SourceLoc(1, 1), "e");
  Diags.clear();
  EXPECT_FALSE(Diags.hasErrors());
  EXPECT_TRUE(Diags.diagnostics().empty());
}

TEST(StringUtil, ParseInt64) {
  int64_t Value = 0;
  EXPECT_TRUE(parseInt64("42", Value));
  EXPECT_EQ(Value, 42);
  EXPECT_TRUE(parseInt64("-17", Value));
  EXPECT_EQ(Value, -17);
  EXPECT_FALSE(parseInt64("", Value));
  EXPECT_FALSE(parseInt64("12x", Value));
  EXPECT_FALSE(parseInt64("1.5", Value));
  EXPECT_FALSE(parseInt64("999999999999999999999999", Value));
}

TEST(StringUtil, ParseDouble) {
  double Value = 0;
  EXPECT_TRUE(parseDouble("3.5", Value));
  EXPECT_DOUBLE_EQ(Value, 3.5);
  EXPECT_TRUE(parseDouble("-2e3", Value));
  EXPECT_DOUBLE_EQ(Value, -2000.0);
  EXPECT_FALSE(parseDouble("abc", Value));
  EXPECT_FALSE(parseDouble("1.5q", Value));
}

TEST(StringUtil, FormatDoubleRoundTrips) {
  for (double Value : {0.0, 1.0, -1.5, 3.141592653589793, 1e-9, 1e300}) {
    double Back = 0;
    ASSERT_TRUE(parseDouble(formatDouble(Value), Back));
    EXPECT_EQ(Back, Value);
  }
}

TEST(StringUtil, FormatDoubleIntegralHasPoint) {
  EXPECT_EQ(formatDouble(2.0), "2.0");
  EXPECT_EQ(formatDouble(0.0), "0.0");
}

TEST(StringUtil, Join) {
  EXPECT_EQ(join({}, ", "), "");
  EXPECT_EQ(join({"a"}, ", "), "a");
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StringUtil, HashBytesDiffers) {
  uint64_t HashA = hashBytes("hello", 5);
  uint64_t HashB = hashBytes("hellp", 5);
  EXPECT_NE(HashA, HashB);
  EXPECT_EQ(HashA, hashBytes("hello", 5));
}

TEST(RNG, Deterministic) {
  RNG A(12345), B(12345);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RNG, BelowInRange) {
  RNG Gen(7);
  for (int I = 0; I != 1000; ++I) {
    uint64_t Draw = Gen.below(10);
    EXPECT_LT(Draw, 10u);
  }
}

TEST(RNG, UnitInRange) {
  RNG Gen(11);
  for (int I = 0; I != 1000; ++I) {
    double Draw = Gen.unit();
    EXPECT_GE(Draw, 0.0);
    EXPECT_LT(Draw, 1.0);
  }
}

TEST(RNG, BelowCoversValues) {
  RNG Gen(3);
  bool Seen[4] = {false, false, false, false};
  for (int I = 0; I != 200; ++I)
    Seen[Gen.below(4)] = true;
  EXPECT_TRUE(Seen[0] && Seen[1] && Seen[2] && Seen[3]);
}
