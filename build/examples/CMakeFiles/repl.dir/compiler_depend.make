# Empty compiler generated dependencies file for repl.
# This may be replaced when dependencies are built.
