
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/repl.cpp" "examples/CMakeFiles/repl.dir/repl.cpp.o" "gcc" "examples/CMakeFiles/repl.dir/repl.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/grift/CMakeFiles/grift_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/lattice/CMakeFiles/grift_lattice.dir/DependInfo.cmake"
  "/root/repo/build/src/bench_programs/CMakeFiles/grift_bench_programs.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/grift_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/grift_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/grift_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/coercions/CMakeFiles/grift_coercions.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/grift_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/grift_types.dir/DependInfo.cmake"
  "/root/repo/build/src/sexp/CMakeFiles/grift_sexp.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/grift_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
