file(REMOVE_RECURSE
  "CMakeFiles/compare_casts.dir/compare_casts.cpp.o"
  "CMakeFiles/compare_casts.dir/compare_casts.cpp.o.d"
  "compare_casts"
  "compare_casts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_casts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
