# Empty compiler generated dependencies file for compare_casts.
# This may be replaced when dependencies are built.
