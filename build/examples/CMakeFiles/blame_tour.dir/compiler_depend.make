# Empty compiler generated dependencies file for blame_tour.
# This may be replaced when dependencies are built.
