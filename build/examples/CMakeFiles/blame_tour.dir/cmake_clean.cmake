file(REMOVE_RECURSE
  "CMakeFiles/blame_tour.dir/blame_tour.cpp.o"
  "CMakeFiles/blame_tour.dir/blame_tour.cpp.o.d"
  "blame_tour"
  "blame_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blame_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
