file(REMOVE_RECURSE
  "CMakeFiles/migration.dir/migration.cpp.o"
  "CMakeFiles/migration.dir/migration.cpp.o.d"
  "migration"
  "migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
