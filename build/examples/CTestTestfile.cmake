# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(grift_ackermann "/root/repo/build/tools/griftc" "/root/repo/examples/programs/ackermann.grift" "--input" "2 3")
set_tests_properties(grift_ackermann PROPERTIES  PASS_REGULAR_EXPRESSION "^9
" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(grift_nqueens "/root/repo/build/tools/griftc" "/root/repo/examples/programs/nqueens.grift" "--input" "6")
set_tests_properties(grift_nqueens PROPERTIES  PASS_REGULAR_EXPRESSION "^4
" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(grift_nqueens_tb "/root/repo/build/tools/griftc" "/root/repo/examples/programs/nqueens.grift" "--input" "6" "--mode=type-based")
set_tests_properties(grift_nqueens_tb PROPERTIES  PASS_REGULAR_EXPRESSION "^4
" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(grift_church "/root/repo/build/tools/griftc" "/root/repo/examples/programs/church.grift")
set_tests_properties(grift_church PROPERTIES  PASS_REGULAR_EXPRESSION "7 12" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(grift_church_mono "/root/repo/build/tools/griftc" "/root/repo/examples/programs/church.grift" "--mode=monotonic")
set_tests_properties(grift_church_mono PROPERTIES  PASS_REGULAR_EXPRESSION "7 12" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(grift_queue "/root/repo/build/tools/griftc" "/root/repo/examples/programs/queue.grift")
set_tests_properties(grift_queue PROPERTIES  PASS_REGULAR_EXPRESSION "5050" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(grift_queue_tb "/root/repo/build/tools/griftc" "/root/repo/examples/programs/queue.grift" "--mode=type-based")
set_tests_properties(grift_queue_tb PROPERTIES  PASS_REGULAR_EXPRESSION "5050" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  PASS_REGULAR_EXPRESSION "6765" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;30;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_blame_tour "/root/repo/build/examples/blame_tour")
set_tests_properties(example_blame_tour PROPERTIES  PASS_REGULAR_EXPRESSION "blame 1:2" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;32;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_compare_casts "/root/repo/build/examples/compare_casts")
set_tests_properties(example_compare_casts PROPERTIES  PASS_REGULAR_EXPRESSION "type-based" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;34;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_migration "/root/repo/build/examples/migration")
set_tests_properties(example_migration PROPERTIES  PASS_REGULAR_EXPRESSION "100%" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;36;add_test;/root/repo/examples/CMakeLists.txt;0;")
