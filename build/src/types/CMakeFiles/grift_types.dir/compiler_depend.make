# Empty compiler generated dependencies file for grift_types.
# This may be replaced when dependencies are built.
