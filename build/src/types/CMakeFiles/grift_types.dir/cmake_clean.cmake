file(REMOVE_RECURSE
  "CMakeFiles/grift_types.dir/Type.cpp.o"
  "CMakeFiles/grift_types.dir/Type.cpp.o.d"
  "CMakeFiles/grift_types.dir/TypeContext.cpp.o"
  "CMakeFiles/grift_types.dir/TypeContext.cpp.o.d"
  "CMakeFiles/grift_types.dir/TypeOps.cpp.o"
  "CMakeFiles/grift_types.dir/TypeOps.cpp.o.d"
  "CMakeFiles/grift_types.dir/TypeParser.cpp.o"
  "CMakeFiles/grift_types.dir/TypeParser.cpp.o.d"
  "libgrift_types.a"
  "libgrift_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grift_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
