file(REMOVE_RECURSE
  "libgrift_types.a"
)
