# Empty dependencies file for grift_lattice.
# This may be replaced when dependencies are built.
