file(REMOVE_RECURSE
  "libgrift_lattice.a"
)
