file(REMOVE_RECURSE
  "CMakeFiles/grift_lattice.dir/Lattice.cpp.o"
  "CMakeFiles/grift_lattice.dir/Lattice.cpp.o.d"
  "libgrift_lattice.a"
  "libgrift_lattice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grift_lattice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
