file(REMOVE_RECURSE
  "CMakeFiles/grift_runtime.dir/Heap.cpp.o"
  "CMakeFiles/grift_runtime.dir/Heap.cpp.o.d"
  "CMakeFiles/grift_runtime.dir/Runtime.cpp.o"
  "CMakeFiles/grift_runtime.dir/Runtime.cpp.o.d"
  "libgrift_runtime.a"
  "libgrift_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grift_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
