file(REMOVE_RECURSE
  "libgrift_runtime.a"
)
