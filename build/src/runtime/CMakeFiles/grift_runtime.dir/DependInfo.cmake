
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/Heap.cpp" "src/runtime/CMakeFiles/grift_runtime.dir/Heap.cpp.o" "gcc" "src/runtime/CMakeFiles/grift_runtime.dir/Heap.cpp.o.d"
  "/root/repo/src/runtime/Runtime.cpp" "src/runtime/CMakeFiles/grift_runtime.dir/Runtime.cpp.o" "gcc" "src/runtime/CMakeFiles/grift_runtime.dir/Runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/coercions/CMakeFiles/grift_coercions.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/grift_types.dir/DependInfo.cmake"
  "/root/repo/build/src/sexp/CMakeFiles/grift_sexp.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/grift_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
