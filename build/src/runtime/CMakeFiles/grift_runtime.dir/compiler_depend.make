# Empty compiler generated dependencies file for grift_runtime.
# This may be replaced when dependencies are built.
