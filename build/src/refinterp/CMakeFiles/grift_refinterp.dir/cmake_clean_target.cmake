file(REMOVE_RECURSE
  "libgrift_refinterp.a"
)
