file(REMOVE_RECURSE
  "CMakeFiles/grift_refinterp.dir/RefInterp.cpp.o"
  "CMakeFiles/grift_refinterp.dir/RefInterp.cpp.o.d"
  "libgrift_refinterp.a"
  "libgrift_refinterp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grift_refinterp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
