# Empty dependencies file for grift_refinterp.
# This may be replaced when dependencies are built.
