file(REMOVE_RECURSE
  "libgrift_ast.a"
)
