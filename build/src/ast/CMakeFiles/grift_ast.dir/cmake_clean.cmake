file(REMOVE_RECURSE
  "CMakeFiles/grift_ast.dir/Ast.cpp.o"
  "CMakeFiles/grift_ast.dir/Ast.cpp.o.d"
  "CMakeFiles/grift_ast.dir/Prim.cpp.o"
  "CMakeFiles/grift_ast.dir/Prim.cpp.o.d"
  "libgrift_ast.a"
  "libgrift_ast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grift_ast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
