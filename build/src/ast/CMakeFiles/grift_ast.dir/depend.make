# Empty dependencies file for grift_ast.
# This may be replaced when dependencies are built.
