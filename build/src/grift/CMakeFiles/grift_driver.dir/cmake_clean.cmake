file(REMOVE_RECURSE
  "CMakeFiles/grift_driver.dir/Grift.cpp.o"
  "CMakeFiles/grift_driver.dir/Grift.cpp.o.d"
  "libgrift_driver.a"
  "libgrift_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grift_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
