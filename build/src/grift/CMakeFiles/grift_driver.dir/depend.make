# Empty dependencies file for grift_driver.
# This may be replaced when dependencies are built.
