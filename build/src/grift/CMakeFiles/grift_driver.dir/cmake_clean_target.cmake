file(REMOVE_RECURSE
  "libgrift_driver.a"
)
