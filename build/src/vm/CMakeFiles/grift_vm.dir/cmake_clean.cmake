file(REMOVE_RECURSE
  "CMakeFiles/grift_vm.dir/Bytecode.cpp.o"
  "CMakeFiles/grift_vm.dir/Bytecode.cpp.o.d"
  "CMakeFiles/grift_vm.dir/Compiler.cpp.o"
  "CMakeFiles/grift_vm.dir/Compiler.cpp.o.d"
  "CMakeFiles/grift_vm.dir/VM.cpp.o"
  "CMakeFiles/grift_vm.dir/VM.cpp.o.d"
  "libgrift_vm.a"
  "libgrift_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grift_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
