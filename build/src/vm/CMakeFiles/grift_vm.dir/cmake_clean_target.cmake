file(REMOVE_RECURSE
  "libgrift_vm.a"
)
