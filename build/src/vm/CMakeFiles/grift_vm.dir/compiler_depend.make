# Empty compiler generated dependencies file for grift_vm.
# This may be replaced when dependencies are built.
