file(REMOVE_RECURSE
  "libgrift_sexp.a"
)
