# Empty dependencies file for grift_sexp.
# This may be replaced when dependencies are built.
