
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sexp/Reader.cpp" "src/sexp/CMakeFiles/grift_sexp.dir/Reader.cpp.o" "gcc" "src/sexp/CMakeFiles/grift_sexp.dir/Reader.cpp.o.d"
  "/root/repo/src/sexp/Sexp.cpp" "src/sexp/CMakeFiles/grift_sexp.dir/Sexp.cpp.o" "gcc" "src/sexp/CMakeFiles/grift_sexp.dir/Sexp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/grift_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
