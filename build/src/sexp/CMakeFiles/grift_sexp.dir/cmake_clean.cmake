file(REMOVE_RECURSE
  "CMakeFiles/grift_sexp.dir/Reader.cpp.o"
  "CMakeFiles/grift_sexp.dir/Reader.cpp.o.d"
  "CMakeFiles/grift_sexp.dir/Sexp.cpp.o"
  "CMakeFiles/grift_sexp.dir/Sexp.cpp.o.d"
  "libgrift_sexp.a"
  "libgrift_sexp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grift_sexp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
