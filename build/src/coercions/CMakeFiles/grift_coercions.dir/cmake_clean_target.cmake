file(REMOVE_RECURSE
  "libgrift_coercions.a"
)
