file(REMOVE_RECURSE
  "CMakeFiles/grift_coercions.dir/Coercion.cpp.o"
  "CMakeFiles/grift_coercions.dir/Coercion.cpp.o.d"
  "CMakeFiles/grift_coercions.dir/CoercionFactory.cpp.o"
  "CMakeFiles/grift_coercions.dir/CoercionFactory.cpp.o.d"
  "libgrift_coercions.a"
  "libgrift_coercions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grift_coercions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
