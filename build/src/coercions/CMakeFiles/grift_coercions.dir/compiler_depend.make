# Empty compiler generated dependencies file for grift_coercions.
# This may be replaced when dependencies are built.
