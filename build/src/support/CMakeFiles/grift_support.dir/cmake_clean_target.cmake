file(REMOVE_RECURSE
  "libgrift_support.a"
)
