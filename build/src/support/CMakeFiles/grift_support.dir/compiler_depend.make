# Empty compiler generated dependencies file for grift_support.
# This may be replaced when dependencies are built.
