file(REMOVE_RECURSE
  "CMakeFiles/grift_support.dir/Diagnostics.cpp.o"
  "CMakeFiles/grift_support.dir/Diagnostics.cpp.o.d"
  "CMakeFiles/grift_support.dir/StringUtil.cpp.o"
  "CMakeFiles/grift_support.dir/StringUtil.cpp.o.d"
  "libgrift_support.a"
  "libgrift_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grift_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
