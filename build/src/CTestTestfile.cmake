# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("sexp")
subdirs("types")
subdirs("ast")
subdirs("frontend")
subdirs("coercions")
subdirs("runtime")
subdirs("vm")
subdirs("grift")
subdirs("lattice")
subdirs("bench_programs")
subdirs("refinterp")
