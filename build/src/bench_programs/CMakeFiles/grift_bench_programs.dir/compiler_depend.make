# Empty compiler generated dependencies file for grift_bench_programs.
# This may be replaced when dependencies are built.
