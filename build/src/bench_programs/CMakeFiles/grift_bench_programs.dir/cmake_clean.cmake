file(REMOVE_RECURSE
  "CMakeFiles/grift_bench_programs.dir/Benchmarks.cpp.o"
  "CMakeFiles/grift_bench_programs.dir/Benchmarks.cpp.o.d"
  "libgrift_bench_programs.a"
  "libgrift_bench_programs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grift_bench_programs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
