file(REMOVE_RECURSE
  "libgrift_bench_programs.a"
)
