# Empty compiler generated dependencies file for grift_frontend.
# This may be replaced when dependencies are built.
