file(REMOVE_RECURSE
  "CMakeFiles/grift_frontend.dir/CoreIR.cpp.o"
  "CMakeFiles/grift_frontend.dir/CoreIR.cpp.o.d"
  "CMakeFiles/grift_frontend.dir/Optimizer.cpp.o"
  "CMakeFiles/grift_frontend.dir/Optimizer.cpp.o.d"
  "CMakeFiles/grift_frontend.dir/Parser.cpp.o"
  "CMakeFiles/grift_frontend.dir/Parser.cpp.o.d"
  "CMakeFiles/grift_frontend.dir/TypeChecker.cpp.o"
  "CMakeFiles/grift_frontend.dir/TypeChecker.cpp.o.d"
  "libgrift_frontend.a"
  "libgrift_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grift_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
