file(REMOVE_RECURSE
  "libgrift_frontend.a"
)
