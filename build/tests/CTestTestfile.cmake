# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_sexp[1]_include.cmake")
include("/root/repo/build/tests/test_types[1]_include.cmake")
include("/root/repo/build/tests/test_frontend[1]_include.cmake")
include("/root/repo/build/tests/test_coercions[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_vm[1]_include.cmake")
include("/root/repo/build/tests/test_lattice[1]_include.cmake")
include("/root/repo/build/tests/test_benchmarks[1]_include.cmake")
include("/root/repo/build/tests/test_monotonic[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_failures[1]_include.cmake")
include("/root/repo/build/tests/test_refinterp[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_optimizer[1]_include.cmake")
include("/root/repo/build/tests/test_printer[1]_include.cmake")
include("/root/repo/build/tests/test_api[1]_include.cmake")
