file(REMOVE_RECURSE
  "CMakeFiles/test_refinterp.dir/test_refinterp.cpp.o"
  "CMakeFiles/test_refinterp.dir/test_refinterp.cpp.o.d"
  "test_refinterp"
  "test_refinterp.pdb"
  "test_refinterp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_refinterp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
