# Empty dependencies file for test_refinterp.
# This may be replaced when dependencies are built.
