file(REMOVE_RECURSE
  "CMakeFiles/test_coercions.dir/test_coercions.cpp.o"
  "CMakeFiles/test_coercions.dir/test_coercions.cpp.o.d"
  "test_coercions"
  "test_coercions.pdb"
  "test_coercions[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coercions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
