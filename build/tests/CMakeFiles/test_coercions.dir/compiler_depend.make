# Empty compiler generated dependencies file for test_coercions.
# This may be replaced when dependencies are built.
