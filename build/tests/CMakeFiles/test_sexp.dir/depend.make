# Empty dependencies file for test_sexp.
# This may be replaced when dependencies are built.
