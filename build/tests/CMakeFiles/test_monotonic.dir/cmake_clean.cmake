file(REMOVE_RECURSE
  "CMakeFiles/test_monotonic.dir/test_monotonic.cpp.o"
  "CMakeFiles/test_monotonic.dir/test_monotonic.cpp.o.d"
  "test_monotonic"
  "test_monotonic.pdb"
  "test_monotonic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_monotonic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
