# Empty compiler generated dependencies file for test_monotonic.
# This may be replaced when dependencies are built.
