# Empty compiler generated dependencies file for fig19_20_appendix.
# This may be replaced when dependencies are built.
