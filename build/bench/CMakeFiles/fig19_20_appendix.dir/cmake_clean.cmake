file(REMOVE_RECURSE
  "CMakeFiles/fig19_20_appendix.dir/fig19_20_appendix.cpp.o"
  "CMakeFiles/fig19_20_appendix.dir/fig19_20_appendix.cpp.o.d"
  "fig19_20_appendix"
  "fig19_20_appendix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_20_appendix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
