file(REMOVE_RECURSE
  "CMakeFiles/ablation_monotonic.dir/ablation_monotonic.cpp.o"
  "CMakeFiles/ablation_monotonic.dir/ablation_monotonic.cpp.o.d"
  "ablation_monotonic"
  "ablation_monotonic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_monotonic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
