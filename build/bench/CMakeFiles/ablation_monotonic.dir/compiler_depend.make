# Empty compiler generated dependencies file for ablation_monotonic.
# This may be replaced when dependencies are built.
