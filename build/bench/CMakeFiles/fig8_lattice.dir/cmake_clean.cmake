file(REMOVE_RECURSE
  "CMakeFiles/fig8_lattice.dir/fig8_lattice.cpp.o"
  "CMakeFiles/fig8_lattice.dir/fig8_lattice.cpp.o.d"
  "fig8_lattice"
  "fig8_lattice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_lattice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
