# Empty compiler generated dependencies file for fig8_lattice.
# This may be replaced when dependencies are built.
