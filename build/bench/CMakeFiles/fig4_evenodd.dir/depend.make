# Empty dependencies file for fig4_evenodd.
# This may be replaced when dependencies are built.
