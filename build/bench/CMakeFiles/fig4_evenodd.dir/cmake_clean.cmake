file(REMOVE_RECURSE
  "CMakeFiles/fig4_evenodd.dir/fig4_evenodd.cpp.o"
  "CMakeFiles/fig4_evenodd.dir/fig4_evenodd.cpp.o.d"
  "fig4_evenodd"
  "fig4_evenodd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_evenodd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
