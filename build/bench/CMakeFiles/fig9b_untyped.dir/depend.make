# Empty dependencies file for fig9b_untyped.
# This may be replaced when dependencies are built.
