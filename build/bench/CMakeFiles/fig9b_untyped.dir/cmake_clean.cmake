file(REMOVE_RECURSE
  "CMakeFiles/fig9b_untyped.dir/fig9b_untyped.cpp.o"
  "CMakeFiles/fig9b_untyped.dir/fig9b_untyped.cpp.o.d"
  "fig9b_untyped"
  "fig9b_untyped.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9b_untyped.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
