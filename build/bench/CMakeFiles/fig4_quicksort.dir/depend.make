# Empty dependencies file for fig4_quicksort.
# This may be replaced when dependencies are built.
