file(REMOVE_RECURSE
  "CMakeFiles/fig4_quicksort.dir/fig4_quicksort.cpp.o"
  "CMakeFiles/fig4_quicksort.dir/fig4_quicksort.cpp.o.d"
  "fig4_quicksort"
  "fig4_quicksort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_quicksort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
