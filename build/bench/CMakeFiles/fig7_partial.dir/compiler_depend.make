# Empty compiler generated dependencies file for fig7_partial.
# This may be replaced when dependencies are built.
