file(REMOVE_RECURSE
  "CMakeFiles/fig7_partial.dir/fig7_partial.cpp.o"
  "CMakeFiles/fig7_partial.dir/fig7_partial.cpp.o.d"
  "fig7_partial"
  "fig7_partial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_partial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
