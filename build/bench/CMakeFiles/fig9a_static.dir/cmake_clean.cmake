file(REMOVE_RECURSE
  "CMakeFiles/fig9a_static.dir/fig9a_static.cpp.o"
  "CMakeFiles/fig9a_static.dir/fig9a_static.cpp.o.d"
  "fig9a_static"
  "fig9a_static.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9a_static.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
