# Empty dependencies file for fig9a_static.
# This may be replaced when dependencies are built.
