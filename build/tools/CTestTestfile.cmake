# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(griftc_expr "/root/repo/build/tools/griftc" "--expr" "(+ 40 2)")
set_tests_properties(griftc_expr PROPERTIES  PASS_REGULAR_EXPRESSION "=> 42" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(griftc_benchmark "/root/repo/build/tools/griftc" "--benchmark" "tak" "--input" "10 5 1" "--stats")
set_tests_properties(griftc_benchmark PROPERTIES  PASS_REGULAR_EXPRESSION "casts applied" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(griftc_dynamic "/root/repo/build/tools/griftc" "--benchmark" "matmult" "--dynamic" "--input" "4" "--mode=type-based")
set_tests_properties(griftc_dynamic PROPERTIES  PASS_REGULAR_EXPRESSION "=> " _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(griftc_dump_core "/root/repo/build/tools/griftc" "--expr" "(ann 1 Dyn)" "--dump-core")
set_tests_properties(griftc_dump_core PROPERTIES  PASS_REGULAR_EXPRESSION "cast" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(griftc_dump_bytecode "/root/repo/build/tools/griftc" "--expr" "(+ 1 2)" "--dump-bytecode")
set_tests_properties(griftc_dump_bytecode PROPERTIES  PASS_REGULAR_EXPRESSION "push-int" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(griftc_static_reject "/root/repo/build/tools/griftc" "--expr" "(lambda (x) x)" "--mode=static")
set_tests_properties(griftc_static_reject PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(griftc_refinterp "/root/repo/build/tools/griftc" "--expr" "(* 6 7)" "--ref-interp")
set_tests_properties(griftc_refinterp PROPERTIES  PASS_REGULAR_EXPRESSION "=> 42" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
