file(REMOVE_RECURSE
  "CMakeFiles/griftc.dir/griftc.cpp.o"
  "CMakeFiles/griftc.dir/griftc.cpp.o.d"
  "griftc"
  "griftc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/griftc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
