# Empty compiler generated dependencies file for griftc.
# This may be replaced when dependencies are built.
